"""Service statistics: latency, throughput, plan-cache behaviour, queues.

Everything wall-clock lives here, deliberately separated from the
deterministic :class:`~repro.accel.metrics.SimulationResult`\\ s the
service produces — results are reproducible, service timings are not.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Dict, List

__all__ = [
    "wall_clock",
    "timed_call",
    "median",
    "WindowRecord",
    "WindowFailure",
    "ServiceStats",
]


def wall_clock() -> float:
    """Monotonic wall-clock reference for service telemetry, in seconds.

    The single sanctioned wall-clock read of the serving layer: latency
    and throughput numbers are timed against this, never the simulated
    results.  Keeping it here (and nowhere else) is enforced by the
    ``DET001`` lint rule — see ``docs/static-analysis.md``.
    """
    return time.perf_counter()


def timed_call(fn):
    """Run ``fn()`` and return ``(result, seconds)`` against :func:`wall_clock`.

    The one-shot building block of the benchmark runner's
    warmup/repeat/median protocol (:mod:`repro.bench.runner`): timing goes
    through the same sanctioned wall-clock read as service telemetry.
    """
    start = wall_clock()
    result = fn()
    return result, wall_clock() - start


def _percentile(values: List[float], q: float) -> float:
    """Nearest-rank percentile: the smallest sample covering a ``q`` fraction.

    The convention, uniformly (tested by ``tests/test_stats.py``):

    * empty sample -> ``0.0`` (telemetry for a run that served nothing);
    * single sample -> that sample, for every ``q``;
    * otherwise ``sorted(values)[ceil(q * n) - 1]`` (with the rank clamped
      to at least 1, so ``q = 0`` means the minimum), i.e. always one of
      the measured samples, never an interpolation — a percentile you can
      find in the raw records is easier to reason about;
    * ``q`` outside ``[0, 1]`` is clamped.
    """
    if not values:
        return 0.0
    ordered = sorted(values)
    q = min(1.0, max(0.0, q))
    rank = math.ceil(q * len(ordered))
    return ordered[max(rank, 1) - 1]


def median(values: List[float]) -> float:
    """Nearest-rank median (0 for an empty sample).

    Nearest-rank rather than interpolated: a median that is one of the
    measured samples is easier to reason about in benchmark records.  For
    an even sample size this is the lower middle sample.
    """
    return _percentile(values, 0.50)


@dataclass
class WindowRecord:
    """Per-window service telemetry."""

    index: int
    num_events: int
    latency_s: float  # window close (ingest) -> result available
    cycles: float
    plan_decision: str  # "hit" | "miss" | "replan" | "breaker"


@dataclass
class WindowFailure:
    """A window the service could not serve within its retry budget."""

    index: int
    attempts: int
    error: str  # `type: message` of the final attempt's exception


@dataclass
class ServiceStats:
    """Aggregated report of one :meth:`StreamingService.serve` run."""

    windows: int = 0
    events: int = 0
    late_events: int = 0
    elapsed_s: float = 0.0
    plan_hits: int = 0
    plan_misses: int = 0
    plan_replans: int = 0
    plan_evictions: int = 0
    plan_cache_size: int = 0
    batches: int = 0
    #: dispatch-thread seconds spent resolving plans (cache lookups + any
    #: scheduler invocations) — high with low hit rate = a replan storm
    plan_resolve_s: float = 0.0
    #: worker seconds spent simulating windows — high with a healthy hit
    #: rate = execution itself is the bottleneck
    execute_s: float = 0.0
    # Pipeline telemetry (see docs/serving.md "Pipelined execution").
    #: configured bound on in-flight batches (1 = serialized dispatch)
    pipeline_depth: int = 1
    #: deepest the in-flight batch window actually got during the run
    max_inflight_batches: int = 0
    #: dispatch seconds blocked acquiring the next windows with *nothing*
    #: in flight — the upstream (ingest / shard merge) stage is behind
    prefetch_stall_s: float = 0.0
    #: dispatch seconds blocked in ``future.result()`` — execution the
    #: pipeline failed to hide behind prefetch/resolve of later windows
    collect_stall_s: float = 0.0
    #: plan resolutions that reused the previous window's measured
    #: profile because the window's delta was empty (deterministic)
    profile_reuses: int = 0
    max_queue_depth: int = 0
    # Resilience counters (all zero on a fault-free run with the
    # resilience hooks at their defaults — the bench gate relies on it).
    #: execution attempts beyond the first, across all windows
    retries: int = 0
    #: windows that exhausted their retry budget (or deadline)
    windows_failed: int = 0
    #: windows dropped by load shedding before they reached dispatch
    shed_windows: int = 0
    #: malformed events diverted to the ingest dead-letter queue
    quarantined_events: int = 0
    #: windows served the last-good plan by an open circuit breaker
    plan_breaker_hits: int = 0
    #: times the plan-manager circuit breaker tripped open
    breaker_trips: int = 0
    # Durability counters (all zero without ``--wal``; a resumed run
    # reports what recovery restored/replayed — see docs/resilience.md
    # "Durability & recovery").
    #: 1 when this run resumed from a durability directory, else 0
    resumes: int = 0
    #: windows restored straight from the checkpoint (never re-executed)
    recovered_windows: int = 0
    #: windows re-executed from replayed WAL events during recovery
    replayed_windows: int = 0
    #: seconds from recovery start until the run re-reached the crash
    #: frontier (lock + checkpoint load + WAL replay + re-execution)
    recovery_s: float = 0.0
    #: events in the write-ahead log at the end of the run
    wal_records: int = 0
    #: checkpoints cut during this run
    checkpoints: int = 0
    queue_depth_samples: List[int] = field(default_factory=list, repr=False)
    records: List[WindowRecord] = field(default_factory=list, repr=False)
    failures: List[WindowFailure] = field(default_factory=list, repr=False)

    # ------------------------------------------------------------------
    # Derived metrics
    # ------------------------------------------------------------------
    @property
    def events_per_sec(self) -> float:
        """Ingested-event throughput over the whole run."""
        if self.elapsed_s <= 0:
            return 0.0
        return self.events / self.elapsed_s

    @property
    def windows_per_sec(self) -> float:
        """Served-window throughput over the whole run."""
        if self.elapsed_s <= 0:
            return 0.0
        return self.windows / self.elapsed_s

    @property
    def latencies(self) -> List[float]:
        """Per-window close-to-result latencies, in seconds."""
        return [r.latency_s for r in self.records]

    @property
    def p50_latency_s(self) -> float:
        """Median window latency."""
        return _percentile(self.latencies, 0.50)

    @property
    def p95_latency_s(self) -> float:
        """95th-percentile window latency."""
        return _percentile(self.latencies, 0.95)

    @property
    def max_latency_s(self) -> float:
        """Worst window latency."""
        return max(self.latencies, default=0.0)

    @property
    def plan_lookups(self) -> int:
        """Plan-manager resolutions (one per window)."""
        return (
            self.plan_hits
            + self.plan_misses
            + self.plan_replans
            + self.plan_breaker_hits
        )

    @property
    def plan_hit_rate(self) -> float:
        """Windows served without invoking the scheduler."""
        if self.plan_lookups == 0:
            return 0.0
        return self.plan_hits / self.plan_lookups

    @property
    def mean_queue_depth(self) -> float:
        """Average ingest-queue depth at batch-pull time."""
        if not self.queue_depth_samples:
            return 0.0
        return sum(self.queue_depth_samples) / len(self.queue_depth_samples)

    @property
    def p95_queue_depth(self) -> float:
        """95th-percentile ingest-queue depth (sustained backlog signal)."""
        return _percentile([float(d) for d in self.queue_depth_samples], 0.95)

    @property
    def mean_batch_windows(self) -> float:
        """Average windows grouped per executor batch."""
        if self.batches == 0:
            return 0.0
        return self.windows / self.batches

    @property
    def shed_rate(self) -> float:
        """Fraction of closed windows dropped by load shedding.

        ``shed / (served + shed)``, and a defined ``0.0`` when the run
        closed no windows at all — the SLO monitor evaluates this on
        every run, including empty ones.
        """
        offered = self.windows + self.shed_windows
        if offered == 0:
            return 0.0
        return self.shed_windows / offered

    @property
    def overlap_ratio(self) -> float:
        """Fraction of worker execution time hidden from the dispatch
        thread — by the worker pool and, at ``pipeline_depth > 1``, by
        prefetch/resolve of later windows overlapping earlier ones.

        ``1 - collect_stall_s / execute_s`` clamped to ``[0, 1]``: a
        fully serialized inline run scores 0.0 (the dispatch thread
        waits out every simulated second), a perfectly overlapped one
        approaches 1.0.  ``0.0`` when nothing executed.
        """
        if self.execute_s <= 0.0:
            return 0.0
        return min(1.0, max(0.0, 1.0 - self.collect_stall_s / self.execute_s))

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def as_dict(self) -> Dict[str, float]:
        """Flat metric mapping (for JSON export / benchmarks)."""
        return {
            "windows": self.windows,
            "events": self.events,
            "late_events": self.late_events,
            "elapsed_s": self.elapsed_s,
            "events_per_sec": self.events_per_sec,
            "windows_per_sec": self.windows_per_sec,
            "p50_latency_s": self.p50_latency_s,
            "p95_latency_s": self.p95_latency_s,
            "max_latency_s": self.max_latency_s,
            "plan_hits": self.plan_hits,
            "plan_misses": self.plan_misses,
            "plan_replans": self.plan_replans,
            "plan_evictions": self.plan_evictions,
            "plan_cache_size": self.plan_cache_size,
            "plan_hit_rate": self.plan_hit_rate,
            "batches": self.batches,
            "mean_batch_windows": self.mean_batch_windows,
            "plan_resolve_s": self.plan_resolve_s,
            "execute_s": self.execute_s,
            "pipeline_depth": self.pipeline_depth,
            "max_inflight_batches": self.max_inflight_batches,
            "prefetch_stall_s": self.prefetch_stall_s,
            "collect_stall_s": self.collect_stall_s,
            "overlap_ratio": self.overlap_ratio,
            "profile_reuses": self.profile_reuses,
            "max_queue_depth": self.max_queue_depth,
            "mean_queue_depth": self.mean_queue_depth,
            "p95_queue_depth": self.p95_queue_depth,
            "retries": self.retries,
            "windows_failed": self.windows_failed,
            "shed_windows": self.shed_windows,
            "shed_rate": self.shed_rate,
            "quarantined_events": self.quarantined_events,
            "plan_breaker_hits": self.plan_breaker_hits,
            "breaker_trips": self.breaker_trips,
            "resumes": self.resumes,
            "recovered_windows": self.recovered_windows,
            "replayed_windows": self.replayed_windows,
            "recovery_s": self.recovery_s,
            "wal_records": self.wal_records,
            "checkpoints": self.checkpoints,
        }

    def summary(self) -> str:
        """Human-readable multi-line report (the ``repro serve`` output)."""
        lines = [
            f"windows served     {self.windows} "
            f"({self.events} events, {self.late_events} late/dropped)",
            f"wall time          {self.elapsed_s:.3f} s "
            f"({self.events_per_sec:,.0f} events/s, "
            f"{self.windows_per_sec:.1f} windows/s)",
            f"window latency     p50={1e3 * self.p50_latency_s:.2f} ms  "
            f"p95={1e3 * self.p95_latency_s:.2f} ms  "
            f"max={1e3 * self.max_latency_s:.2f} ms",
            f"plan cache         hit rate {self.plan_hit_rate:.1%} "
            f"({self.plan_hits} hits, {self.plan_misses} misses, "
            f"{self.plan_replans} drift re-plans, "
            f"{self.plan_evictions} evictions, {self.plan_cache_size} resident)",
            f"batching           {self.batches} batches, "
            f"{self.mean_batch_windows:.1f} windows/batch",
            f"phase time         plan={1e3 * self.plan_resolve_s:.2f} ms  "
            f"execute={1e3 * self.execute_s:.2f} ms",
            f"pipeline           depth={self.pipeline_depth} "
            f"(max in flight {self.max_inflight_batches}), "
            f"stalls prefetch={1e3 * self.prefetch_stall_s:.2f} ms "
            f"collect={1e3 * self.collect_stall_s:.2f} ms, "
            f"overlap {self.overlap_ratio:.1%}"
            + (
                f", {self.profile_reuses} profile reuses"
                if self.profile_reuses
                else ""
            ),
            f"ingest queue       depth max={self.max_queue_depth} "
            f"mean={self.mean_queue_depth:.1f} p95={self.p95_queue_depth:.1f}",
        ]
        if (
            self.retries
            or self.windows_failed
            or self.shed_windows
            or self.quarantined_events
            or self.plan_breaker_hits
            or self.breaker_trips
        ):
            lines.append(
                f"resilience         {self.retries} retries, "
                f"{self.windows_failed} windows failed, "
                f"{self.shed_windows} shed, "
                f"{self.quarantined_events} events quarantined, "
                f"breaker {self.breaker_trips} trips / "
                f"{self.plan_breaker_hits} short-circuits"
            )
        if self.wal_records or self.checkpoints or self.resumes:
            line = (
                f"durability         {self.wal_records} WAL records, "
                f"{self.checkpoints} checkpoints"
            )
            if self.resumes:
                line += (
                    f"; resumed ({self.recovered_windows} recovered, "
                    f"{self.replayed_windows} replayed, "
                    f"recovery {1e3 * self.recovery_s:.2f} ms)"
                )
            lines.append(line)
        return "\n".join(lines)

    def record_queue_depth(self, depth: int) -> None:
        """Sample the ingest queue depth (called once per batch pull)."""
        self.queue_depth_samples.append(depth)
        self.max_queue_depth = max(self.max_queue_depth, depth)

    def from_plan_manager(self, manager) -> None:
        """Copy the plan manager's counters into this report."""
        self.plan_hits = manager.hits
        self.plan_misses = manager.misses
        self.plan_replans = manager.replans
        self.plan_evictions = manager.evictions
        self.plan_cache_size = manager.size
        self.plan_breaker_hits = manager.breaker_hits
        self.breaker_trips = manager.breaker_trips
