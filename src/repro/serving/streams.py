"""Event-stream sources for the serving layer.

Two on-ramps:

* :func:`synthetic_event_stream` — a power-law interaction stream with
  bursty intensity and a removal minority, the standing load generator
  for service tests and throughput benchmarks;
* :func:`stream_from_dataset` — replays a Table 1 dataset's snapshot
  deltas as timestamped events, so the offline workloads double as
  online traffic.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..graphs.continuous import ContinuousDynamicGraph, EdgeEvent
from ..graphs.datasets import load_dataset
from ..graphs.snapshot import GraphSnapshot

__all__ = ["synthetic_event_stream", "stream_from_dataset"]


def synthetic_event_stream(
    num_vertices: int = 256,
    num_events: int = 10_000,
    seed: int = 7,
    remove_fraction: float = 0.15,
    burst_period: float = 0.0,
    name: str = "synthetic-stream",
) -> ContinuousDynamicGraph:
    """A reproducible power-law edge-event stream.

    Sources are uniform; destinations follow a Zipf-like popularity
    profile (hub-heavy, as real interaction graphs are).  About
    ``remove_fraction`` of events delete a currently-live edge.  With
    ``burst_period > 0`` the event *times* cluster into periodic bursts,
    producing windows of very different sizes — the drift-detector /
    backpressure stress case; otherwise times are uniform over
    ``[0, num_events)``.
    """
    if num_vertices < 2:
        raise ValueError("num_vertices must be >= 2")
    if num_events < 0:
        raise ValueError("num_events must be >= 0")
    if not 0 <= remove_fraction < 1:
        raise ValueError("remove_fraction must be in [0, 1)")
    rng = np.random.default_rng(seed)
    weights = np.arange(1, num_vertices + 1, dtype=np.float64) ** -1.0
    weights /= weights.sum()
    times = np.sort(rng.uniform(0.0, float(num_events), size=num_events))
    if burst_period > 0:
        # Fold each time toward the start of its burst period, packing
        # events into the first third of every period.
        phase = np.mod(times, burst_period)
        times = times - phase + phase / 3.0
        times = np.sort(times)
    live: List[tuple] = []
    live_set = set()
    events: List[EdgeEvent] = []
    for t in times:
        if live and rng.random() < remove_fraction:
            pos = int(rng.integers(len(live)))
            src, dst = live[pos]
            live[pos] = live[-1]
            live.pop()
            live_set.discard((src, dst))
            events.append(EdgeEvent(float(t), src, dst, "remove"))
            continue
        src = int(rng.integers(num_vertices))
        dst = int(rng.choice(num_vertices, p=weights))
        if src == dst:
            dst = (dst + 1) % num_vertices
        if (src, dst) not in live_set:
            live.append((src, dst))
            live_set.add((src, dst))
        events.append(EdgeEvent(float(t), src, dst, "add"))
    return ContinuousDynamicGraph(
        GraphSnapshot.empty(num_vertices), events, name=name
    )


def stream_from_dataset(
    dataset: str,
    scale: float = 0.0625,
    snapshots: Optional[int] = None,
    seed: int = 7,
    name: Optional[str] = None,
) -> ContinuousDynamicGraph:
    """Replay a synthesized Table 1 dataset as an event stream.

    The dataset's first snapshot becomes the initial graph; each later
    snapshot transition contributes its exact edge delta at integer times
    ``1..T-1``.  Serving the result with ``window=1.0`` and ``origin=0``
    reproduces the offline snapshots one-to-one.
    """
    graph = load_dataset(dataset, scale=scale, snapshots=snapshots, seed=seed)
    return ContinuousDynamicGraph.from_snapshots(graph, name=name)
