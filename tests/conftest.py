"""Shared fixtures: small deterministic workloads and hardware configs."""

import numpy as np
import pytest

from repro.accel.config import HardwareConfig
from repro.core.plan import DGNNSpec
from repro.graphs.dynamic import DynamicGraph
from repro.graphs.generators import generate_dynamic_graph
from repro.graphs.snapshot import GraphSnapshot


@pytest.fixture
def tiny_snapshot() -> GraphSnapshot:
    """5 vertices, hand-written edges: 0->1, 0->2, 1->2, 3->2, 2->4."""
    return GraphSnapshot.from_edges(
        5, [(0, 1), (0, 2), (1, 2), (3, 2), (2, 4)], feature_dim=3
    )


@pytest.fixture
def line_snapshot() -> GraphSnapshot:
    """A directed line 0 -> 1 -> 2 -> 3."""
    return GraphSnapshot.from_edges(4, [(0, 1), (1, 2), (2, 3)], feature_dim=2)


@pytest.fixture
def small_graph() -> DynamicGraph:
    """A small dynamic graph with features, for numeric model tests."""
    return generate_dynamic_graph(
        num_vertices=40,
        num_edges=160,
        num_snapshots=5,
        dissimilarity=0.15,
        feature_dim=6,
        seed=11,
        with_features=True,
        name="small",
    )


@pytest.fixture
def medium_graph() -> DynamicGraph:
    """A medium structure-only dynamic graph, for scheduler/simulator tests."""
    return generate_dynamic_graph(
        num_vertices=300,
        num_edges=2400,
        num_snapshots=6,
        dissimilarity=0.1,
        feature_dim=32,
        seed=5,
        name="medium",
    )


@pytest.fixture
def small_spec() -> DGNNSpec:
    """2-layer GCN + LSTM matching small_graph's feature width."""
    return DGNNSpec(gcn_dims=(6, 8, 8), rnn_hidden_dim=8)


@pytest.fixture
def medium_spec() -> DGNNSpec:
    """The paper's classic DGCN at medium_graph's feature width."""
    return DGNNSpec.classic(32, hidden_dim=16)


@pytest.fixture
def hardware() -> HardwareConfig:
    """Default 4x4 test array."""
    return HardwareConfig.small()


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG for test-local sampling."""
    return np.random.default_rng(123)
