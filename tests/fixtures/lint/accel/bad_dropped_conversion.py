"""Lint fixture: assignment that drops the pJ -> J conversion (UNIT002)."""


def report(sram_pj: float) -> dict:
    """Broken on purpose: a ``*_joules`` name is bound to a raw pJ value."""
    total_joules = sram_pj
    return {"total": total_joules}
