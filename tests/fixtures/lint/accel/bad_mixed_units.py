"""Lint fixture: a pJ quantity added to a joule quantity (UNIT001)."""


def dynamic_energy(compute_pj: float, dram_joules: float) -> float:
    """Broken on purpose: the pJ term needs the 1e-12 conversion first."""
    return compute_pj + dram_joules
