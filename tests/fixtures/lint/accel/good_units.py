"""Lint fixture: the corrected counterpart of ``bad_mixed_units.py``."""

JOULES_PER_PJ = 1e-12


def dynamic_energy_joules(compute_pj: float, dram_joules: float) -> float:
    """Clean: the pJ term is converted before the addition."""
    return compute_pj * JOULES_PER_PJ + dram_joules
