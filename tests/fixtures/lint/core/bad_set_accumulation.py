"""Lint fixture: float fold over a set (DET003)."""


def fold_weights(weights_by_vertex: dict, vertices) -> float:
    """Broken on purpose: the fold order follows the process hash seed."""
    frontier = set(vertices)
    total = 0.0
    for vertex in frontier:
        total += weights_by_vertex[vertex]
    return total
