"""Lint fixture: unseeded RNG inside a planning helper (DET002)."""

import numpy as np


def perturb_schedule(slots):
    """Broken on purpose: ``default_rng()`` without a seed varies per run."""
    rng = np.random.default_rng()
    return [slot + rng.uniform() for slot in slots]
