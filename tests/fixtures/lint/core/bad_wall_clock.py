"""Lint fixture: wall-clock read in a planning path (DET001)."""

import time


def stamp_plan(plan: dict) -> dict:
    """Broken on purpose: plan content must not depend on wall-clock."""
    plan["stamp"] = time.time()
    return plan
