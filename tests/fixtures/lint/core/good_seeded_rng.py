"""Lint fixture: the corrected counterpart of ``bad_unseeded_rng.py``."""

import numpy as np


def perturb_schedule(slots, seed: int):
    """Clean: the generator is constructed from an explicit seed."""
    rng = np.random.default_rng(seed)
    return [slot + rng.uniform() for slot in slots]
