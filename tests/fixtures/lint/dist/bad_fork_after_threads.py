"""Lint fixture: process fork after thread creation (MP001)."""

import multiprocessing
from concurrent.futures import ThreadPoolExecutor


def serve(events, handle):
    pool = ThreadPoolExecutor(max_workers=2)
    for event in events:
        pool.submit(handle, event)
    # Broken on purpose: the pool's threads already exist, so the forked
    # child inherits whatever locks they hold at fork time.
    worker = multiprocessing.Process(target=handle, args=(None,))
    worker.start()
    pool.shutdown()
    return worker
