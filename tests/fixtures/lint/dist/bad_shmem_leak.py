"""Lint fixture: shared-memory segments without guaranteed cleanup (MP002).

Three seeded variants of the write_segment bug: each creates a segment
(``create=True``) and fails the lifecycle protocol on some path.
"""

from multiprocessing import shared_memory


def write_never_unlinked(name, payload):
    # Closed, but falls off the end: nobody ever unlinks the segment and
    # no spec is returned for a consumer to unlink it by.
    shm = shared_memory.SharedMemory(create=True, size=len(payload), name=name)
    shm.buf[: len(payload)] = payload
    shm.close()


def write_skips_unlink(name, payload):
    # The finally guarantees the close, but the implicit return hands the
    # segment to nobody: it outlives the process with no owner.
    shm = shared_memory.SharedMemory(create=True, size=len(payload), name=name)
    try:
        shm.buf[: len(payload)] = payload
    finally:
        shm.close()


def write_close_not_guaranteed(name, payload):
    # The close sits inside the try body: if the fill raises, the mapping
    # is never closed; the swallowed-error path also leaks the segment.
    shm = shared_memory.SharedMemory(create=True, size=len(payload), name=name)
    try:
        shm.buf[: len(payload)] = payload
        shm.close()
    except ValueError:
        return None
    shm.unlink()
    return name
