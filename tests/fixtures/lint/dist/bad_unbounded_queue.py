"""Lint fixture: unbounded queue and bare blocking get (MP003)."""

import multiprocessing


def coordinate(items):
    # Broken on purpose: no maxsize means a slow consumer buffers every
    # window, and the bare get() hangs forever if the producer died.
    queue = multiprocessing.Queue()
    for item in items:
        queue.put(item)
    return queue.get()
