"""Lint fixture: unsafe values flowing into worker-bound messages (MP004)."""

import threading


def enqueue_pending(out_queue, items):
    # Broken on purpose: a set's iteration order is per-process, so the
    # consumer's fold order differs from the producer's.
    pending = {item for item in items}
    out_queue.put(pending)


def enqueue_guard(out_queue):
    # Broken on purpose: lock objects do not survive pickling.
    guard = threading.Lock()
    out_queue.put(guard)
