"""Lint fixture: cross-process message without a generation tag (MP005)."""

from dataclasses import dataclass


@dataclass(frozen=True)
class WindowDoneMessage:
    # Broken on purpose: without a generation field the coordinator
    # cannot drop stale deliveries from a restarted worker.
    shard: int
    window: int
