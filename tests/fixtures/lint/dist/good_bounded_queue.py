"""Lint fixture: bounded queue with timeout-guarded gets (MP003 clean)."""

import multiprocessing


def coordinate(items, capacity, heartbeat_s):
    queue = multiprocessing.Queue(maxsize=capacity)
    for item in items:
        queue.put(item)
    try:
        return queue.get(timeout=heartbeat_s)
    except Exception:
        return queue.get_nowait()
