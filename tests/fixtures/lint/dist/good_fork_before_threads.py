"""Lint fixture: workers forked before any thread exists (MP001 clean)."""

import multiprocessing
from concurrent.futures import ThreadPoolExecutor


def serve(events, handle):
    worker = multiprocessing.Process(target=handle, args=(None,))
    worker.start()
    pool = ThreadPoolExecutor(max_workers=2)
    for event in events:
        pool.submit(handle, event)
    pool.shutdown()
    return worker
