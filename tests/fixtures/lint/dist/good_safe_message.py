"""Lint fixture: ordered, picklable queue payloads (MP004 clean)."""


def enqueue_pending(out_queue, items):
    pending = {item for item in items}
    out_queue.put(sorted(pending))  # ordered and picklable at the boundary


def enqueue_counts(out_queue, counts):
    out_queue.put(tuple(counts))
