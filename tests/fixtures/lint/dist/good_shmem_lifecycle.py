"""Lint fixture: the exactly-once segment lifecycle protocol (MP002 clean)."""

from multiprocessing import shared_memory


def write_segment(name, payload):
    # Creator hands off: close is guaranteed by the finally, and the
    # returned name transfers unlink responsibility to the consumer.
    shm = shared_memory.SharedMemory(create=True, size=len(payload), name=name)
    try:
        shm.buf[: len(payload)] = payload
    finally:
        shm.close()
    return name


def scratch_segment(name, payload):
    # Full local lifecycle: created, closed on every path, then unlinked.
    shm = shared_memory.SharedMemory(create=True, size=len(payload), name=name)
    try:
        shm.buf[: len(payload)] = payload
    finally:
        shm.close()
    shm.unlink()


def consume_segment(name):
    # Attach-side (no create=True): the consumer closes its mapping and
    # performs the exactly-once unlink the writer handed off.
    shm = shared_memory.SharedMemory(name=name)
    try:
        data = bytes(shm.buf)
    finally:
        shm.close()
    shm.unlink()
    return data
