"""Lint fixture: generation-tagged message classes (MP005 clean)."""

from dataclasses import dataclass


@dataclass(frozen=True)
class BaseMessage:
    shard: int
    generation: int


@dataclass(frozen=True)
class WindowDoneMessage(BaseMessage):
    # Inherits the generation tag from BaseMessage.
    window: int
