"""Lint fixture: a checkpoint written in place (DUR001).

The blob goes straight to the final path: a crash mid-``write`` leaves a
torn checkpoint that the loader can only classify as corruption, and the
previous good checkpoint has already been truncated away.
"""


def save_checkpoint(path, blob):
    with open(path, "wb") as handle:
        handle.write(blob)
