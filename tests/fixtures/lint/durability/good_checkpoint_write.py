"""Lint fixture: the fsync-then-rename checkpoint protocol (DUR001 clean)."""

import os


def save_checkpoint(path, blob):
    # Write-to-temp, flush, fsync, then publish atomically: every crash
    # point leaves either the old complete file or the new complete file.
    tmp = path + ".tmp"
    with open(tmp, "wb") as handle:
        handle.write(blob)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


def append_wal_record(path, record):
    # Append-mode opens are exempt: the active WAL segment is designed
    # to have a torn tail, which recovery truncates.
    with open(path, "ab") as handle:
        handle.write(record)
