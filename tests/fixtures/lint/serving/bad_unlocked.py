"""Lint fixture: cross-thread attribute mutation without a lock (THR001)."""

import threading


class ResultSink:
    """Broken on purpose: ``results`` is written from the worker thread in
    ``_run`` and from the caller thread in ``publish``, with no lock."""

    def __init__(self):
        self._lock = threading.Lock()
        self.results = []
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        while True:
            self.results.append(self._poll())

    def publish(self, item):
        self.results.append(item)

    def _poll(self):
        return None
