"""Lint fixture: the corrected counterpart of ``bad_unlocked.py``."""

import threading


class ResultSink:
    """Clean: every mutation of the shared list holds the lock."""

    def __init__(self):
        self._lock = threading.Lock()
        self.results = []
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        while True:
            with self._lock:
                self.results.append(self._poll())

    def publish(self, item):
        with self._lock:
            self.results.append(item)

    def _poll(self):
        return None
