"""Lint fixture: a finding silenced by a justified suppression (clean)."""

import time


def trace_overhead() -> float:
    return time.perf_counter()  # repro: noqa[DET001] fixture exercising a justified suppression


def nothing_to_silence() -> int:
    return 1
