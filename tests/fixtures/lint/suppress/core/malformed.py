"""Lint fixture: every way a suppression itself can be a finding."""

import time


def no_justification() -> float:
    return time.perf_counter()  # repro: noqa[DET001]


def bare_noqa() -> float:
    return time.perf_counter()  # repro: noqa timing helper


def unused() -> int:
    return 1  # repro: noqa[UNIT001] nothing fires on this line
