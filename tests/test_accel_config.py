"""Unit tests for repro.accel.config."""

import pytest

from repro.accel.config import (
    DRAMConfig,
    HardwareConfig,
    NoCConfig,
    PEConfig,
    TileConfig,
)


class TestPEConfig:
    def test_paper_defaults(self):
        pe = PEConfig()
        assert pe.mac_rows == pe.mac_cols == 4
        assert pe.macs_per_cycle == 16
        assert pe.local_buffer_bytes == 256 * 1024


class TestTileConfig:
    def test_paper_defaults(self):
        tile = TileConfig()
        assert tile.num_pes == 16
        assert tile.macs_per_cycle == 256
        assert tile.reuse_fifo_bytes == 512 * 1024


class TestNoCConfig:
    def test_valid_topologies(self):
        for topology in ("ditile", "mesh", "crossbar", "ring"):
            assert NoCConfig(topology=topology).topology == topology

    def test_rejects_unknown_topology(self):
        with pytest.raises(ValueError):
            NoCConfig(topology="torus")

    def test_rejects_zero_bandwidth(self):
        with pytest.raises(ValueError):
            NoCConfig(link_bytes_per_cycle=0)


class TestDRAMConfig:
    def test_rejects_bad_efficiencies(self):
        with pytest.raises(ValueError):
            DRAMConfig(streaming_efficiency=0.0)
        with pytest.raises(ValueError):
            DRAMConfig(random_efficiency=1.5)
        with pytest.raises(ValueError):
            DRAMConfig(bandwidth_bytes_per_cycle=-1)


class TestHardwareConfig:
    def test_small_totals(self):
        hw = HardwareConfig.small()
        assert hw.total_tiles == 16
        assert hw.total_pes == 256
        assert hw.total_multipliers == 4096
        assert hw.peak_macs_per_cycle == 4096

    def test_paper_scales_buffer_with_tiles(self):
        hw = HardwareConfig.paper()
        assert hw.total_tiles == 256
        # 256 KB per tile, matching the 4 MB / 16-tile reading of §7.1.
        assert hw.distributed_buffer_bytes == 256 * 256 * 1024

    def test_onchip_totals(self):
        hw = HardwareConfig.small()
        per_tile = 512 * 1024 + 16 * 256 * 1024
        assert hw.total_onchip_bytes == hw.distributed_buffer_bytes + 16 * per_tile

    def test_normalized_changes_only_interconnect(self):
        base = HardwareConfig.small()
        normalized = base.normalized("crossbar")
        assert normalized.noc.topology == "crossbar"
        assert not normalized.noc.relink_enabled
        assert normalized.total_multipliers == base.total_multipliers
        assert normalized.distributed_buffer_bytes == base.distributed_buffer_bytes
        assert normalized.frequency_hz == base.frequency_hz

    def test_rejects_bad_grid(self):
        with pytest.raises(ValueError):
            HardwareConfig(grid_rows=0)

    def test_rejects_bad_frequency(self):
        with pytest.raises(ValueError):
            HardwareConfig(frequency_hz=0)
