"""Configuration-interaction tests for the DiTile model and hardware."""

import pytest

from repro.accel.config import HardwareConfig
from repro.core.scheduler import SchedulerOptions
from repro.ditile import DiTileAccelerator


class TestHardwareInteractions:
    def test_rectangular_grid(self, medium_graph, medium_spec):
        hw = HardwareConfig(grid_rows=2, grid_cols=8)
        model = DiTileAccelerator(hw)
        result = model.simulate(medium_graph, medium_spec)
        assert result.execution_cycles > 0
        plan = model.plan(medium_graph, medium_spec)
        assert plan.factors.tiles_used <= 16

    def test_single_tile_degenerates_gracefully(self, medium_graph, medium_spec):
        hw = HardwareConfig(grid_rows=1, grid_cols=1,
                            distributed_buffer_bytes=256 * 1024)
        model = DiTileAccelerator(hw)
        plan = model.plan(medium_graph, medium_spec)
        assert plan.factors.tiles_used == 1
        assert plan.comm.total == pytest.approx(0.0)
        result = model.simulate(medium_graph, medium_spec)
        assert result.execution_cycles > 0

    def test_tiny_buffer_forces_aggressive_tiling(self, medium_graph, medium_spec):
        hw = HardwareConfig(distributed_buffer_bytes=16 * 1024)
        model = DiTileAccelerator(hw)
        plan = model.plan(medium_graph, medium_spec)
        assert plan.tiling.alpha > 1

    def test_all_options_off_still_runs(self, medium_graph, medium_spec):
        model = DiTileAccelerator(
            options=SchedulerOptions(
                enable_tiling=False,
                enable_parallelism=False,
                enable_balance=False,
                enable_reuse=False,
            ),
            reconfigurable_noc=False,
        )
        result = model.simulate(medium_graph, medium_spec)
        full = DiTileAccelerator().simulate(medium_graph, medium_spec)
        assert result.execution_cycles > full.execution_cycles

    def test_paper_config_plans_with_more_tiles(self, medium_graph, medium_spec):
        small = DiTileAccelerator(HardwareConfig.small())
        large = DiTileAccelerator(HardwareConfig.paper())
        small_plan = small.plan(medium_graph, medium_spec)
        large_plan = large.plan(medium_graph, medium_spec)
        assert large_plan.factors.tiles_used >= small_plan.factors.tiles_used


class TestSpecInteractions:
    def test_gru_spec_costs_less_rnn(self, medium_graph):
        from repro.core.plan import DGNNSpec

        lstm = DGNNSpec((32, 16, 16), 16, rnn_kind="lstm")
        gru = DGNNSpec((32, 16, 16), 16, rnn_kind="gru")
        model = DiTileAccelerator()
        lstm_costs = model.build_costs(medium_graph, lstm)
        gru_costs = model.build_costs(medium_graph, gru)
        assert gru_costs.rnn_macs < lstm_costs.rnn_macs

    def test_wider_features_cost_more(self, medium_graph):
        from repro.core.plan import DGNNSpec

        narrow = DGNNSpec((32, 16), 16)
        wide = DGNNSpec((32, 64), 16)
        model = DiTileAccelerator()
        assert (
            model.build_costs(medium_graph, wide).total_macs
            > model.build_costs(medium_graph, narrow).total_macs
        )
