"""Unit tests for repro.baselines.algorithms (the four cost models)."""

import numpy as np
import pytest

from repro.baselines.algorithms import (
    ALGORITHMS,
    AlgorithmParams,
    Placement,
    SnapshotQuantities,
    build_costs,
    gnn_macs_for,
    layer_fractions,
    measure_quantities,
    rnn_fraction,
)
from repro.core.plan import DGNNSpec
from repro.models.workload import gcn_ops, rnn_ops


@pytest.fixture
def params():
    return AlgorithmParams()


@pytest.fixture
def quantity():
    return SnapshotQuantities(
        timestamp=3,
        vertices=1000,
        edges=8000,
        dissimilarity=0.1,
        added_edges=60,
        removed_edges=40,
    )


@pytest.fixture
def placement():
    return Placement(snapshot_groups=4, vertex_groups=4, load_utilization=0.8)


class TestQuantities:
    def test_measure_first_snapshot(self, medium_graph):
        quantities = measure_quantities(medium_graph)
        assert quantities[0].dissimilarity == 1.0
        assert quantities[0].added_edges == medium_graph[0].num_edges
        assert quantities[0].removed_edges == 0

    def test_measure_transitions(self, medium_graph):
        quantities = measure_quantities(medium_graph)
        for t, q in enumerate(quantities[1:], start=1):
            assert q.timestamp == t
            assert 0 <= q.dissimilarity <= 1
            assert q.delta_edges == q.added_edges + q.removed_edges

    def test_deletion_share(self, quantity):
        assert quantity.deletion_share == pytest.approx(0.4)

    def test_deletion_share_no_changes(self):
        q = SnapshotQuantities(1, 10, 20, 0.0, 0, 0)
        assert q.deletion_share == 0.0


class TestLayerFractions:
    def test_cold_start_is_full(self, quantity, params):
        cold = SnapshotQuantities(0, 1000, 8000, 1.0, 8000, 0)
        for algorithm in ALGORITHMS:
            assert layer_fractions(algorithm, cold, 2, params) == [1.0, 1.0]

    def test_re_alg_always_full(self, quantity, params):
        assert layer_fractions("re", quantity, 2, params) == [1.0, 1.0]

    def test_ditile_expands_per_layer(self, quantity, params):
        fractions = layer_fractions("ditile", quantity, 2, params)
        rate = params.expansion_rate
        assert fractions[0] == pytest.approx(0.1 * rate)
        assert fractions[1] == pytest.approx(0.1 * rate**2)

    def test_race_pays_deletion_penalty(self, quantity, params):
        race = layer_fractions("race", quantity, 2, params)
        ditile = layer_fractions("ditile", quantity, 2, params)
        expected = 1.0 + params.race_deletion_penalty * quantity.deletion_share
        for r, d in zip(race, ditile):
            assert r == pytest.approx(d * expected)

    def test_race_without_deletions_matches_ditile(self, params):
        q = SnapshotQuantities(2, 1000, 8000, 0.1, 100, 0)
        assert layer_fractions("race", q, 2, params) == layer_fractions(
            "ditile", q, 2, params
        )

    def test_mega_recomputes_whole_chain(self, quantity, params):
        mega = layer_fractions("mega", quantity, 2, params)
        ditile = layer_fractions("ditile", quantity, 2, params)
        assert mega[0] == mega[1]  # no per-layer containment
        assert mega[1] == pytest.approx(
            min(ditile[1] * params.mega_chain_factor, 1.0)
        )

    def test_fractions_capped_at_one(self, params):
        volatile = SnapshotQuantities(2, 100, 800, 0.9, 400, 400)
        for algorithm in ALGORITHMS:
            for fraction in layer_fractions(algorithm, volatile, 3, params):
                assert fraction <= 1.0

    def test_dis_floor_applies(self, params):
        frozen = SnapshotQuantities(2, 1000, 8000, 0.0, 0, 0)
        fractions = layer_fractions("ditile", frozen, 2, params)
        assert fractions[0] >= params.dis_floor

    def test_unknown_algorithm(self, quantity, params):
        with pytest.raises(ValueError):
            layer_fractions("bogus", quantity, 2, params)


class TestKernelCosts:
    def test_rnn_fraction_is_last_layer(self, quantity, params):
        for algorithm in ("ditile", "race", "mega"):
            assert rnn_fraction(algorithm, quantity, 2, params) == pytest.approx(
                layer_fractions(algorithm, quantity, 2, params)[-1]
            )
        assert rnn_fraction("re", quantity, 2, params) == 1.0

    def test_gnn_macs_scale_with_mean_fraction(self, quantity, params):
        agg, comb = gnn_macs_for("ditile", quantity, 1000.0, 2000.0, 2, params)
        fractions = layer_fractions("ditile", quantity, 2, params)
        mean = sum(fractions) / 2
        assert agg == pytest.approx(1000.0 * mean)
        assert comb == pytest.approx(2000.0 * mean)


class TestBuildCosts:
    def test_algorithm_op_ordering(self, medium_graph, medium_spec, placement):
        totals = {
            algorithm: build_costs(
                medium_graph, medium_spec, algorithm, placement
            ).total_macs
            for algorithm in ALGORITHMS
        }
        assert totals["re"] > totals["race"] > totals["ditile"]
        assert totals["re"] > totals["mega"] > totals["ditile"]

    def test_re_alg_matches_closed_form(self, medium_graph, medium_spec, placement):
        costs = build_costs(medium_graph, medium_spec, "re", placement)
        expected = 0.0
        for snapshot in medium_graph:
            expected += gcn_ops(snapshot, medium_spec.gcn_dims).total
            expected += rnn_ops(
                snapshot.num_vertices,
                medium_spec.embedding_dim,
                medium_spec.rnn_hidden_dim,
                medium_spec.rnn_matmuls,
            ).total
        assert costs.total_macs == pytest.approx(expected)

    def test_dram_ordering(self, medium_graph, medium_spec, placement):
        dram = {
            algorithm: build_costs(
                medium_graph, medium_spec, algorithm, placement
            ).dram_bytes
            for algorithm in ALGORITHMS
        }
        assert dram["re"] > dram["ditile"]
        assert dram["race"] > dram["ditile"]
        assert dram["mega"] > dram["ditile"]

    def test_temporal_traffic_only_at_boundaries(
        self, medium_graph, medium_spec
    ):
        placement = Placement(snapshot_groups=3, vertex_groups=1)
        costs = build_costs(medium_graph, medium_spec, "re", placement)
        temporal = [s.noc.temporal_bytes for s in costs.snapshots]
        assert temporal[0] == 0.0  # no boundary before the first snapshot
        assert sum(1 for t in temporal if t > 0) == 2  # T=6, 3 groups

    def test_single_group_has_no_temporal_traffic(
        self, medium_graph, medium_spec
    ):
        placement = Placement(snapshot_groups=1, vertex_groups=4)
        costs = build_costs(medium_graph, medium_spec, "ditile", placement)
        assert all(s.noc.temporal_bytes == 0 for s in costs.snapshots)

    def test_reuse_traffic_requires_capability(self, medium_graph, medium_spec):
        capable = Placement(snapshot_groups=3, vertex_groups=1, reuse_capable=True)
        incapable = Placement(snapshot_groups=3, vertex_groups=1)
        with_reuse = build_costs(medium_graph, medium_spec, "ditile", capable)
        without = build_costs(medium_graph, medium_spec, "ditile", incapable)
        assert sum(s.noc.reuse_bytes for s in with_reuse.snapshots) > 0
        assert sum(s.noc.reuse_bytes for s in without.snapshots) == 0

    def test_engine_split_penalizes_utilization(self, medium_graph, medium_spec):
        split = Placement(
            snapshot_groups=4, vertex_groups=4, load_utilization=0.8,
            engine_split=True,
        )
        plain = Placement(
            snapshot_groups=4, vertex_groups=4, load_utilization=0.8
        )
        split_costs = build_costs(medium_graph, medium_spec, "race", split)
        plain_costs = build_costs(medium_graph, medium_spec, "race", plain)
        assert split_costs.load_utilization < plain_costs.load_utilization

    def test_reconfigurable_placement_pays_config_events(
        self, medium_graph, medium_spec
    ):
        reconfigurable = Placement(
            snapshot_groups=2, vertex_groups=8, reconfigurable=True
        )
        static = Placement(snapshot_groups=2, vertex_groups=8)
        with_events = build_costs(
            medium_graph, medium_spec, "ditile", reconfigurable
        )
        without = build_costs(medium_graph, medium_spec, "ditile", static)
        assert sum(s.config_events for s in with_events.snapshots) > 0
        assert sum(s.config_events for s in without.snapshots) == 0

    def test_rejects_unknown_algorithm(self, medium_graph, medium_spec, placement):
        with pytest.raises(ValueError):
            build_costs(medium_graph, medium_spec, "bogus", placement)

    def test_quantization_increases_traffic(self, medium_graph, medium_spec, placement):
        from dataclasses import replace

        quantized = build_costs(medium_graph, medium_spec, "ditile", placement)
        ideal = build_costs(
            medium_graph,
            medium_spec,
            "ditile",
            placement,
            params=replace(
                AlgorithmParams(),
                dram_line_bytes=None,
                noc_flit_bytes=None,
                noc_header_flits=0,
            ),
        )
        assert quantized.dram_bytes >= ideal.dram_bytes
        assert quantized.noc_bytes >= ideal.noc_bytes


class TestPlacementValidation:
    def test_rejects_bad_groups(self):
        with pytest.raises(ValueError):
            Placement(snapshot_groups=0, vertex_groups=1)

    def test_rejects_bad_utilization(self):
        with pytest.raises(ValueError):
            Placement(snapshot_groups=1, vertex_groups=1, load_utilization=0.0)


class TestWarmStart:
    def test_warm_start_cuts_cold_cost(self, medium_graph, medium_spec, placement):
        cold = build_costs(medium_graph, medium_spec, "ditile", placement)
        warm = build_costs(
            medium_graph, medium_spec, "ditile", placement, warm_start=True
        )
        assert warm.total_macs < cold.total_macs
        assert warm.dram_bytes < cold.dram_bytes

    def test_warm_start_does_not_help_re_alg(
        self, medium_graph, medium_spec, placement
    ):
        cold = build_costs(medium_graph, medium_spec, "re", placement)
        warm = build_costs(
            medium_graph, medium_spec, "re", placement, warm_start=True
        )
        assert warm.total_macs == pytest.approx(cold.total_macs)

    def test_warm_start_single_snapshot_noop(self, medium_spec, placement):
        # A single-snapshot graph cannot infer steady-state dissimilarity.
        from repro.graphs.generators import generate_dynamic_graph

        one = generate_dynamic_graph(50, 200, 1, feature_dim=32, seed=1)
        cold = build_costs(one, medium_spec, "ditile", placement)
        warm = build_costs(one, medium_spec, "ditile", placement,
                           warm_start=True)
        assert warm.total_macs == pytest.approx(cold.total_macs)
