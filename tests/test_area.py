"""Unit tests for repro.accel.area — must reproduce Fig. 14 breakdowns."""

import pytest

from repro.accel.area import AreaModel
from repro.accel.config import HardwareConfig


@pytest.fixture
def report():
    return AreaModel().report(HardwareConfig.small())


class TestFig14Chip:
    def test_chip_breakdown_matches_paper(self, report):
        breakdown = report.chip_breakdown()
        assert breakdown["tiles"] == pytest.approx(77.8, abs=0.5)
        assert breakdown["on_chip_buffer"] == pytest.approx(15.7, abs=0.5)
        assert breakdown["reconfigurable_noc"] == pytest.approx(5.6, abs=0.5)
        assert breakdown["logic"] == pytest.approx(0.9, abs=0.3)

    def test_percentages_sum_to_100(self, report):
        for breakdown in (
            report.chip_breakdown(),
            report.tile_breakdown(),
            report.pe_breakdown(),
        ):
            assert sum(breakdown.values()) == pytest.approx(100.0)


class TestFig14Tile:
    def test_tile_breakdown_matches_paper(self, report):
        breakdown = report.tile_breakdown()
        assert breakdown["pe_array"] == pytest.approx(60.5, abs=0.5)
        assert breakdown["distributed_buffer"] == pytest.approx(28.4, abs=0.5)
        assert breakdown["reuse_fifo"] == pytest.approx(8.1, abs=0.5)
        assert breakdown["mesh"] == pytest.approx(2.3, abs=0.3)
        assert breakdown["control"] == pytest.approx(0.7, abs=0.3)


class TestFig14PE:
    def test_pe_breakdown_matches_paper(self, report):
        breakdown = report.pe_breakdown()
        assert breakdown["mac_array"] == pytest.approx(59.4, abs=0.5)
        assert breakdown["local_buffer"] == pytest.approx(23.8, abs=0.5)
        assert breakdown["control"] == pytest.approx(2.0, abs=0.3)


class TestScaling:
    def test_breakdown_stable_across_grid_sizes(self):
        model = AreaModel()
        small = model.report(HardwareConfig.small()).chip_breakdown()
        paper = model.report(HardwareConfig.paper()).chip_breakdown()
        for key in small:
            assert small[key] == pytest.approx(paper[key], abs=0.2)

    def test_chip_area_grows_with_tiles(self):
        model = AreaModel()
        small = model.report(HardwareConfig.small()).chip_mm2
        paper = model.report(HardwareConfig.paper()).chip_mm2
        assert paper == pytest.approx(16 * small, rel=0.01)

    def test_bigger_mac_array_shifts_pe_breakdown(self):
        from dataclasses import replace

        hw = HardwareConfig.small()
        big_pe = replace(
            hw, tile=replace(hw.tile, pe=replace(hw.tile.pe, mac_rows=8))
        )
        breakdown = AreaModel().report(big_pe).pe_breakdown()
        assert breakdown["mac_array"] > 59.4

    def test_component_totals_consistent(self):
        report = AreaModel().report(HardwareConfig.small())
        assert report.tile_components["pe_array"] == pytest.approx(
            16 * report.pe_mm2
        )
        assert report.chip_components["tiles"] == pytest.approx(
            16 * report.tile_mm2
        )
