"""Unit tests for repro.core.balance (Algorithm 2)."""

import numpy as np
import pytest

from repro.core.balance import balance_workload, natural_workload
from repro.core.comm_model import ParallelFactors
from repro.models.workload import dynamic_vertex_workload


def _factors(graph, ns, nv):
    return ParallelFactors.from_groups(
        graph.num_snapshots, graph.stats().avg_vertices, ns, nv
    )


class TestBalanceWorkload:
    def test_balanced_beats_natural(self, medium_graph):
        factors = _factors(medium_graph, 2, 8)
        balanced = balance_workload(medium_graph, 2, factors)
        natural = natural_workload(medium_graph, 2, factors)
        assert balanced.imbalance <= natural.imbalance + 1e-9
        assert balanced.utilization >= natural.utilization - 1e-9

    def test_vload_matches_eq17(self, medium_graph):
        factors = _factors(medium_graph, 1, 4)
        balanced = balance_workload(medium_graph, 2, factors)
        np.testing.assert_allclose(
            balanced.vload, dynamic_vertex_workload(medium_graph, 2)
        )

    def test_group_loads_sum_to_total(self, medium_graph):
        factors = _factors(medium_graph, 1, 4)
        balanced = balance_workload(medium_graph, 2, factors)
        assert balanced.group_loads.sum() == pytest.approx(balanced.vload.sum())

    def test_partition_covers_all_vertices(self, medium_graph):
        factors = _factors(medium_graph, 2, 8)
        balanced = balance_workload(medium_graph, 2, factors)
        assert balanced.partition.sizes().sum() == 300

    def test_utilization_bounds(self, medium_graph):
        factors = _factors(medium_graph, 2, 8)
        for result in (
            balance_workload(medium_graph, 2, factors),
            natural_workload(medium_graph, 2, factors),
        ):
            assert 0.0 < result.utilization <= 1.0
            assert result.imbalance >= 1.0

    def test_single_group_is_perfectly_balanced(self, medium_graph):
        factors = _factors(medium_graph, 1, 1)
        balanced = balance_workload(medium_graph, 2, factors)
        assert balanced.imbalance == pytest.approx(1.0)
        assert balanced.utilization == pytest.approx(1.0)

    def test_snapshot_groups_partition_timeline(self, medium_graph):
        factors = _factors(medium_graph, 3, 2)
        balanced = balance_workload(medium_graph, 2, factors)
        combined = np.concatenate(balanced.snapshot_groups)
        np.testing.assert_array_equal(combined, np.arange(6))

    def test_bdw_groups_enumerate_grid(self, medium_graph):
        factors = _factors(medium_graph, 2, 4)
        balanced = balance_workload(medium_graph, 2, factors)
        groups = balanced.bdw_groups()
        assert len(groups) == 8  # 2 snapshot columns x 4 vertex rows
        coords = {(g["snapshot_group"], g["vertex_group"]) for g in groups}
        assert len(coords) == 8
        # Every group's vertices come from its row's partition.
        for g in groups:
            np.testing.assert_array_equal(
                g["vertices"], balanced.partition.members(g["vertex_group"])
            )


class TestNaturalWorkload:
    def test_contiguous_ranges(self, medium_graph):
        factors = _factors(medium_graph, 1, 4)
        natural = natural_workload(medium_graph, 2, factors)
        members = natural.partition.members(0)
        np.testing.assert_array_equal(members, np.arange(len(members)))

    def test_same_vload_as_balanced(self, medium_graph):
        factors = _factors(medium_graph, 1, 4)
        natural = natural_workload(medium_graph, 2, factors)
        balanced = balance_workload(medium_graph, 2, factors)
        np.testing.assert_allclose(natural.vload, balanced.vload)
