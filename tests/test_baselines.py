"""Unit tests for the four baseline accelerator models."""

import pytest

from repro.accel.config import HardwareConfig
from repro.baselines import (
    DGNNBoosterAccelerator,
    MEGAAccelerator,
    RACEAccelerator,
    ReaDyAccelerator,
)

ALL_BASELINES = [
    ReaDyAccelerator,
    DGNNBoosterAccelerator,
    RACEAccelerator,
    MEGAAccelerator,
]


class TestConfiguration:
    @pytest.mark.parametrize("cls", ALL_BASELINES)
    def test_normalization_protocol(self, cls):
        # §7.1: same multipliers, storage, frequency as DiTile.
        model = cls()
        reference = HardwareConfig.small()
        assert model.hardware.total_multipliers == reference.total_multipliers
        assert (
            model.hardware.distributed_buffer_bytes
            == reference.distributed_buffer_bytes
        )
        assert model.hardware.frequency_hz == reference.frequency_hz

    def test_topologies(self):
        assert ReaDyAccelerator().hardware.noc.topology == "mesh"
        assert DGNNBoosterAccelerator().hardware.noc.topology == "ring"
        assert RACEAccelerator().hardware.noc.topology == "crossbar"
        assert MEGAAccelerator().hardware.noc.topology == "mesh"

    def test_algorithms(self):
        assert ReaDyAccelerator().algorithm == "re"
        assert DGNNBoosterAccelerator().algorithm == "re"
        assert RACEAccelerator().algorithm == "race"
        assert MEGAAccelerator().algorithm == "mega"

    @pytest.mark.parametrize("cls", ALL_BASELINES)
    def test_relink_disabled(self, cls):
        assert not cls().hardware.noc.relink_enabled

    def test_repr(self):
        assert "mesh" in repr(ReaDyAccelerator())


class TestPlacements:
    def test_ready_is_temporal(self, medium_graph, medium_spec):
        placement = ReaDyAccelerator().placement(medium_graph, medium_spec)
        assert placement.snapshot_groups == medium_graph.num_snapshots
        assert placement.snapshot_groups * placement.vertex_groups <= 16

    def test_booster_never_splits_vertices(self, medium_graph, medium_spec):
        placement = DGNNBoosterAccelerator().placement(medium_graph, medium_spec)
        assert placement.vertex_groups == 1

    def test_race_is_reuse_capable_engine_split(self, medium_graph, medium_spec):
        placement = RACEAccelerator().placement(medium_graph, medium_spec)
        assert placement.reuse_capable
        assert placement.engine_split

    def test_mega_is_spatial(self, medium_graph, medium_spec):
        placement = MEGAAccelerator().placement(medium_graph, medium_spec)
        assert placement.snapshot_groups == 1
        assert placement.vertex_groups == 16

    @pytest.mark.parametrize("cls", ALL_BASELINES)
    def test_utilization_in_range(self, cls, medium_graph, medium_spec):
        placement = cls().placement(medium_graph, medium_spec)
        assert 0.0 < placement.load_utilization <= 1.0


class TestSimulation:
    @pytest.mark.parametrize("cls", ALL_BASELINES)
    def test_simulate_produces_result(self, cls, medium_graph, medium_spec):
        result = cls().simulate(medium_graph, medium_spec)
        assert result.execution_cycles > 0
        assert result.energy_joules > 0
        assert result.accelerator == cls.name

    def test_ready_and_booster_share_op_counts(self, medium_graph, medium_spec):
        ready = ReaDyAccelerator().build_costs(medium_graph, medium_spec)
        booster = DGNNBoosterAccelerator().build_costs(medium_graph, medium_spec)
        assert ready.total_macs == pytest.approx(booster.total_macs)

    def test_incremental_baselines_do_less_work(self, medium_graph, medium_spec):
        re_macs = ReaDyAccelerator().build_costs(medium_graph, medium_spec).total_macs
        race_macs = RACEAccelerator().build_costs(medium_graph, medium_spec).total_macs
        mega_macs = MEGAAccelerator().build_costs(medium_graph, medium_spec).total_macs
        assert race_macs < re_macs
        assert mega_macs < re_macs

    def test_custom_hardware_budget(self, medium_graph, medium_spec):
        small = ReaDyAccelerator(
            HardwareConfig(grid_rows=2, grid_cols=2,
                           distributed_buffer_bytes=2**20)
        )
        large = ReaDyAccelerator()
        small_result = small.simulate(medium_graph, medium_spec)
        large_result = large.simulate(medium_graph, medium_spec)
        # The medium workload is memory-bound, so total cycles barely move;
        # the compute component must reflect the 4x tile deficit (partly
        # offset by the small grid's better occupancy).
        assert small_result.cycles.compute > 2 * large_result.cycles.compute

    def test_ready_energy_params_reflect_reram(self):
        params = ReaDyAccelerator().energy_params()
        assert params.sram_8kb_word_pj > 10.0

    def test_booster_energy_params_reflect_fpga(self):
        params = DGNNBoosterAccelerator().energy_params()
        assert params.fp32_mult_pj > 3.7
