"""End-to-end tests for ``repro bench`` (list/run/compare, exit codes).

The run tests use the real case catalog on the smallest dataset
(``planner/tiling[pm]``) with ``--repeats 1 --warmup 0`` so they stay
fast while still exercising graph synthesis and the full record path.
"""

import json
from pathlib import Path

from repro.bench import EXIT_CLEAN, EXIT_REGRESSIONS, EXIT_USAGE
from repro.cli import main

SMOKE_BASELINE = (
    Path(__file__).resolve().parent.parent / "benchmarks" / "baselines" / "smoke.json"
)

FAST = ["--case", "planner/tiling[pm]", "--repeats", "1", "--warmup", "0"]


def _run(tmp_path, stem):
    path = tmp_path / f"{stem}.json"
    assert main(["bench", "run", *FAST, "--json", str(path)]) == EXIT_CLEAN
    return path


class TestList:
    def test_catalog(self, capsys):
        assert main(["bench", "list"]) == 0
        out = capsys.readouterr().out
        assert "planner/tiling[pm]" in out
        assert "serving/throughput[smoke]" in out
        assert "[smoke,full]" in out or "[full,smoke]" in out


class TestRun:
    def test_writes_record(self, tmp_path, capsys):
        path = _run(tmp_path, "record")
        out = capsys.readouterr().out
        assert "record written to" in out
        record = json.loads(path.read_text())
        assert record["schema"] == 1
        (case,) = record["cases"]
        assert case["name"] == "planner/tiling[pm]"
        assert case["counters"]["alpha"] >= 1

    def test_two_runs_identical_counters(self, tmp_path):
        """Acceptance: back-to-back runs agree on every deterministic counter."""
        first = json.loads(_run(tmp_path, "first").read_text())
        second = json.loads(_run(tmp_path, "second").read_text())
        for a, b in zip(first["cases"], second["cases"]):
            assert a["name"] == b["name"]
            assert a["counters"] == b["counters"]

    def test_update_baselines(self, tmp_path, capsys):
        code = main(
            ["bench", "run", *FAST, "--baseline-dir", str(tmp_path), "--update-baselines"]
        )
        assert code == EXIT_CLEAN
        assert "baseline updated" in capsys.readouterr().out
        # explicit --case selection has no suite, so the baseline is "custom"
        assert (tmp_path / "custom.json").exists()

    def test_unknown_case_is_usage_error(self, capsys):
        assert main(["bench", "run", "--case", "no/such[case]"]) == EXIT_USAGE
        assert "error:" in capsys.readouterr().out


class TestCompare:
    def test_self_compare_clean(self, tmp_path, capsys):
        path = _run(tmp_path, "base")
        code = main(["bench", "compare", str(path), str(path)])
        assert code == EXIT_CLEAN
        assert "OK" in capsys.readouterr().out

    def test_injected_regression_fails(self, tmp_path, capsys):
        """Acceptance: a perturbed deterministic counter flips the gate."""
        base = _run(tmp_path, "base")
        record = json.loads(base.read_text())
        record["cases"][0]["counters"]["alpha"] += 1
        drifted = tmp_path / "drifted.json"
        drifted.write_text(json.dumps(record))
        code = main(["bench", "compare", str(base), str(drifted)])
        assert code == EXIT_REGRESSIONS
        assert "FAIL" in capsys.readouterr().out

    def test_json_format(self, tmp_path, capsys):
        path = _run(tmp_path, "base")
        capsys.readouterr()  # drop the run output
        code = main(["bench", "compare", str(path), str(path), "--format", "json"])
        assert code == EXIT_CLEAN
        payload = json.loads(capsys.readouterr().out)
        assert payload["exit_code"] == EXIT_CLEAN
        assert payload["deltas"] == []

    def test_missing_file_is_usage_error(self, tmp_path, capsys):
        code = main(
            ["bench", "compare", str(tmp_path / "a.json"), str(tmp_path / "b.json")]
        )
        assert code == EXIT_USAGE
        assert "error:" in capsys.readouterr().out

    def test_committed_smoke_baseline_matches_fresh_run(self, tmp_path):
        """The committed smoke baseline gates a fresh smoke run cleanly."""
        fresh = tmp_path / "smoke.json"
        assert main(["bench", "run", "--suite", "smoke", "--json", str(fresh)]) == 0
        code = main(["bench", "compare", str(SMOKE_BASELINE), str(fresh)])
        assert code == EXIT_CLEAN


class TestRunTrace:
    def test_trace_flag_writes_per_case_artifacts(self, tmp_path, capsys):
        trace_dir = tmp_path / "traces"
        assert main(["bench", "run", *FAST, "--trace", str(trace_dir)]) == 0
        out = capsys.readouterr().out
        assert "trace:" in out
        from repro.obs import validate_trace_file

        trace = trace_dir / "planner_tiling_pm.trace.json"
        assert validate_trace_file(trace) == []
        assert (trace_dir / "planner_tiling_pm.phases.json").exists()
        assert (trace_dir / "planner_tiling_pm.spans.jsonl").exists()

    def test_traced_record_matches_untraced_record(self, tmp_path):
        plain = tmp_path / "plain.json"
        traced = tmp_path / "traced.json"
        assert main(["bench", "run", *FAST, "--json", str(plain)]) == 0
        assert main(
            ["bench", "run", *FAST, "--json", str(traced),
             "--trace", str(tmp_path / "tr")]
        ) == 0
        import json as _json

        a = _json.loads(plain.read_text())["cases"][0]["counters"]
        b = _json.loads(traced.read_text())["cases"][0]["counters"]
        assert a == b
