"""Unit tests for the baseline comparator and its exit-code contract."""

import json

import pytest

from repro.bench import (
    EXIT_CLEAN,
    EXIT_REGRESSIONS,
    BenchRecord,
    CaseRecord,
    compare_records,
)


def _record(counters=None, timings=None, name="case/a"):
    return BenchRecord(
        cases=[
            CaseRecord(
                name=name,
                suites=("smoke",),
                counters=dict(counters or {"cycles": 100.0}),
                timings=dict(timings or {"run_s": 1.0}),
            )
        ],
        suite="smoke",
    )


def _statuses(report, kind):
    return {
        (d.case, d.metric): d.status for d in report.deltas if d.kind == kind
    }


class TestCounterGate:
    def test_identical_is_clean(self):
        report = compare_records(_record(), _record())
        assert report.exit_code == EXIT_CLEAN
        assert report.counter_failures == []
        assert report.cases_compared == 1
        assert report.counters_compared == 1

    def test_any_drift_fails(self):
        report = compare_records(
            _record({"cycles": 100.0}), _record({"cycles": 100.0000001})
        )
        assert report.exit_code == EXIT_REGRESSIONS
        assert _statuses(report, "counter")[("case/a", "cycles")] == "regressed"

    def test_missing_counter_fails(self):
        report = compare_records(
            _record({"cycles": 100.0, "bytes": 5.0}), _record({"cycles": 100.0})
        )
        assert report.exit_code == EXIT_REGRESSIONS
        assert _statuses(report, "counter")[("case/a", "bytes")] == "missing"

    def test_extra_counter_fails(self):
        report = compare_records(
            _record({"cycles": 100.0}), _record({"cycles": 100.0, "bytes": 5.0})
        )
        assert report.exit_code == EXIT_REGRESSIONS
        assert _statuses(report, "counter")[("case/a", "bytes")] == "extra"

    def test_missing_case_fails(self):
        report = compare_records(_record(name="case/a"), _record(name="case/b"))
        assert report.exit_code == EXIT_REGRESSIONS
        statuses = _statuses(report, "case")
        assert statuses[("case/a", "")] == "missing"
        assert statuses[("case/b", "")] == "extra"


class TestTimingBand:
    def test_within_band_is_ok(self):
        report = compare_records(
            _record(timings={"run_s": 1.0}),
            _record(timings={"run_s": 1.2}),
            timing_tolerance=0.25,
        )
        assert report.exit_code == EXIT_CLEAN
        assert _statuses(report, "timing")[("case/a", "run_s")] == "ok"

    def test_slower_reported_not_gated(self):
        report = compare_records(
            _record(timings={"run_s": 1.0}), _record(timings={"run_s": 2.0})
        )
        assert _statuses(report, "timing")[("case/a", "run_s")] == "slower"
        assert report.timing_violations and report.exit_code == EXIT_CLEAN

    def test_slower_gated_on_request(self):
        report = compare_records(
            _record(timings={"run_s": 1.0}),
            _record(timings={"run_s": 2.0}),
            gate_timings=True,
        )
        assert report.exit_code == EXIT_REGRESSIONS

    def test_faster_never_gates(self):
        report = compare_records(
            _record(timings={"run_s": 1.0}),
            _record(timings={"run_s": 0.1}),
            gate_timings=True,
        )
        assert _statuses(report, "timing")[("case/a", "run_s")] == "faster"
        assert report.exit_code == EXIT_CLEAN

    def test_new_timing_metric_is_informational(self):
        report = compare_records(
            _record(timings={"run_s": 1.0}),
            _record(timings={"run_s": 1.0, "p95_s": 0.5}),
            gate_timings=True,
        )
        assert _statuses(report, "timing")[("case/a", "p95_s")] == "new"
        assert report.exit_code == EXIT_CLEAN

    def test_zero_baseline_is_ok(self):
        report = compare_records(
            _record(timings={"run_s": 0.0}), _record(timings={"run_s": 5.0})
        )
        assert _statuses(report, "timing")[("case/a", "run_s")] == "ok"

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ValueError, match="timing_tolerance"):
            compare_records(_record(), _record(), timing_tolerance=-0.1)


class TestRendering:
    def test_text_clean(self):
        text = compare_records(_record(), _record()).render_text()
        assert "OK: deterministic counters match" in text

    def test_text_failure_mentions_update_flow(self):
        text = compare_records(
            _record({"cycles": 1.0}), _record({"cycles": 2.0})
        ).render_text()
        assert "FAIL" in text
        assert "--update-baselines" in text

    def test_json_lists_only_notable_deltas(self):
        report = compare_records(
            _record({"cycles": 1.0, "bytes": 2.0}), _record({"cycles": 9.0, "bytes": 2.0})
        )
        payload = json.loads(report.render_json())
        assert payload["exit_code"] == EXIT_REGRESSIONS
        assert [d["metric"] for d in payload["deltas"]] == ["cycles"]
