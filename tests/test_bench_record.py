"""Unit tests for benchmark records: schema, validation, JSON round-trip."""

import json

import pytest

from repro.bench import (
    SCHEMA_VERSION,
    BenchRecord,
    CaseRecord,
    RecordError,
    environment_metadata,
    git_revision,
)


def _case(name="planner/tiling[pm]", **overrides):
    fields = dict(
        name=name,
        suites=("full", "smoke"),  # pre-sorted: to_dict normalizes suite order
        params={"dataset": "pubmed"},
        counters={"alpha": 4.0, "data_volume_bytes": 1024.0},
        timings={"run_s": 0.01},
        repeats=3,
        warmup=1,
    )
    fields.update(overrides)
    return CaseRecord(**fields)


class TestEnvironmentMetadata:
    def test_keys(self):
        env = environment_metadata()
        assert set(env) == {
            "python", "implementation", "numpy", "platform", "git_sha"
        }
        assert env["python"].count(".") == 2

    def test_git_revision_in_checkout(self):
        sha = git_revision()
        assert sha is None or (len(sha) == 40 and set(sha) <= set("0123456789abcdef"))

    def test_git_revision_outside_checkout(self, tmp_path):
        assert git_revision(tmp_path) is None


class TestCaseRecord:
    def test_round_trip(self):
        case = _case()
        rebuilt = CaseRecord.from_dict(case.to_dict())
        assert rebuilt == case

    def test_suites_sorted_in_dict(self):
        case = _case(suites=("smoke", "full"))
        assert case.to_dict()["suites"] == ["full", "smoke"]

    def test_missing_counters_rejected(self):
        raw = _case().to_dict()
        del raw["counters"]
        with pytest.raises(RecordError, match="counters"):
            CaseRecord.from_dict(raw)

    def test_non_numeric_metric_rejected(self):
        raw = _case().to_dict()
        raw["counters"]["alpha"] = "four"
        with pytest.raises(RecordError, match="must be a number"):
            CaseRecord.from_dict(raw)

    def test_bool_metric_rejected(self):
        raw = _case().to_dict()
        raw["timings"]["run_s"] = True
        with pytest.raises(RecordError, match="must be a number"):
            CaseRecord.from_dict(raw)


class TestBenchRecord:
    def test_round_trip_via_file(self, tmp_path):
        record = BenchRecord(cases=[_case()], suite="smoke")
        path = record.save(tmp_path / "nested" / "record.json")
        rebuilt = BenchRecord.load(path)
        assert rebuilt.suite == "smoke"
        assert rebuilt.schema == SCHEMA_VERSION
        assert rebuilt.cases == record.cases
        assert rebuilt.environment == record.environment

    def test_json_is_stable(self):
        record = BenchRecord(cases=[_case()], suite="smoke")
        text = record.to_json()
        assert text == record.to_json()
        assert text.endswith("\n")
        parsed = json.loads(text)
        assert list(parsed) == sorted(parsed)

    def test_case_lookup(self):
        record = BenchRecord(cases=[_case()])
        assert record.case("planner/tiling[pm]") is record.cases[0]
        assert record.case("nope") is None
        assert record.case_names == ["planner/tiling[pm]"]

    def test_unsupported_schema_rejected(self):
        raw = BenchRecord(cases=[_case()]).to_dict()
        raw["schema"] = 99
        with pytest.raises(RecordError, match="schema"):
            BenchRecord.from_dict(raw)

    def test_duplicate_case_rejected(self):
        raw = BenchRecord(cases=[_case(), _case()]).to_dict()
        with pytest.raises(RecordError, match="duplicate"):
            BenchRecord.from_dict(raw)

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(RecordError, match="cannot read"):
            BenchRecord.load(tmp_path / "absent.json")

    def test_load_invalid_json(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(RecordError, match="not valid JSON"):
            BenchRecord.load(path)
