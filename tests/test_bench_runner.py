"""Unit tests for the bench registry and the determinism-checked runner."""

import pytest

from repro.bench import (
    BenchRegistry,
    BenchRunner,
    CaseOutput,
    NondeterministicCaseError,
    UnknownCaseError,
    default_registry,
)


def _registry():
    registry = BenchRegistry()
    registry.register(
        "toy/steady",
        lambda: CaseOutput(counters={"n": 3.0}, timings={"speed": 10.0}),
        suites=("smoke", "full"),
        params={"size": 3},
    )
    registry.register(
        "toy/full-only",
        lambda: CaseOutput(counters={"n": 7.0}),
        suites=("full",),
    )
    return registry


class TestRegistry:
    def test_names_sorted(self):
        assert _registry().names == ["toy/full-only", "toy/steady"]

    def test_duplicate_rejected(self):
        registry = _registry()
        with pytest.raises(ValueError, match="already registered"):
            registry.register("toy/steady", lambda: CaseOutput(counters={}))

    def test_unknown_suite_on_case_rejected(self):
        with pytest.raises(ValueError, match="unknown suites"):
            _registry().register(
                "toy/bad", lambda: CaseOutput(counters={}), suites=("nightly",)
            )

    def test_select_by_suite(self):
        registry = _registry()
        assert [c.name for c in registry.select(suite="smoke")] == ["toy/steady"]
        assert [c.name for c in registry.select(suite="full")] == [
            "toy/full-only", "toy/steady"
        ]

    def test_select_names_wins_over_suite(self):
        selected = _registry().select(suite="smoke", names=["toy/full-only"])
        assert [c.name for c in selected] == ["toy/full-only"]

    def test_unknown_lookups(self):
        registry = _registry()
        with pytest.raises(UnknownCaseError, match="unknown benchmark case"):
            registry.get("toy/absent")
        with pytest.raises(UnknownCaseError, match="unknown suite"):
            registry.select(suite="nightly")

    def test_default_registry_catalog(self):
        registry = default_registry()
        assert registry is default_registry()  # cached
        smoke = {c.name for c in registry.select(suite="smoke")}
        assert "planner/tiling[pm]" in smoke
        assert "serving/throughput[smoke]" in smoke
        assert smoke < set(registry.names)  # smoke is a strict subset


class TestRunner:
    def test_record_shape(self):
        record = BenchRunner(_registry(), repeats=3, warmup=1).run(suite="smoke")
        assert record.suite == "smoke"
        assert record.case_names == ["toy/steady"]
        case = record.cases[0]
        assert case.counters == {"n": 3.0}
        assert case.timings["speed"] == 10.0
        assert case.timings["run_s"] >= 0
        assert case.repeats == 3 and case.warmup == 1
        assert case.params == {"size": 3}

    def test_case_timings_are_medianed(self):
        samples = iter([5.0, 1.0, 9.0])
        registry = BenchRegistry()
        registry.register(
            "toy/latency",
            lambda: CaseOutput(counters={"n": 1.0}, timings={"lat": next(samples)}),
            suites=("smoke",),
        )
        record = BenchRunner(registry, repeats=3, warmup=0).run(suite="smoke")
        assert record.cases[0].timings["lat"] == 5.0

    def test_nondeterministic_counter_raises(self):
        ticks = iter(range(10))
        registry = BenchRegistry()
        registry.register(
            "toy/drifting",
            lambda: CaseOutput(counters={"n": float(next(ticks))}),
            suites=("smoke",),
        )
        runner = BenchRunner(registry, repeats=2, warmup=1)
        with pytest.raises(NondeterministicCaseError, match="not deterministic"):
            runner.run(suite="smoke")

    def test_warmup_executions_also_checked(self):
        ticks = iter(range(10))
        registry = BenchRegistry()
        registry.register(
            "toy/drifting",
            lambda: CaseOutput(counters={"n": float(next(ticks))}),
            suites=("smoke",),
        )
        runner = BenchRunner(registry, repeats=1, warmup=2)
        with pytest.raises(NondeterministicCaseError):
            runner.run(suite="smoke")

    def test_empty_selection_rejected(self):
        registry = BenchRegistry()
        with pytest.raises(ValueError, match="no benchmark cases"):
            BenchRunner(registry).run()

    def test_invalid_protocol_rejected(self):
        with pytest.raises(ValueError, match="repeats"):
            BenchRunner(_registry(), repeats=0)
        with pytest.raises(ValueError, match="warmup"):
            BenchRunner(_registry(), warmup=-1)

    def test_progress_callback(self):
        notes = []
        BenchRunner(
            _registry(), repeats=1, warmup=0, progress=notes.append
        ).run(suite="smoke")
        assert any("toy/steady" in note for note in notes)
