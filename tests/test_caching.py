"""Unit tests for the shared bounded LRU cache."""

import pytest

from repro.caching import LRUCache


class TestLRUCache:
    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            LRUCache(0)

    def test_get_put_roundtrip(self):
        cache = LRUCache(4)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.get("missing") is None
        assert cache.get("missing", 42) == 42

    def test_eviction_order_is_lru(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh "a"; "b" becomes stalest
        cache.put("c", 3)
        assert "a" in cache and "c" in cache
        assert "b" not in cache
        assert cache.stats.evictions == 1

    def test_capacity_bound_holds(self):
        cache = LRUCache(8)
        for i in range(100):
            cache.put(i, i)
        assert len(cache) == 8
        assert cache.stats.evictions == 92
        assert set(cache) == set(range(92, 100))

    def test_overwrite_refreshes_without_evicting(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)
        assert len(cache) == 2
        assert cache.stats.evictions == 0
        assert cache.get("a") == 10

    def test_unbounded_mode(self):
        cache = LRUCache(None)
        for i in range(1000):
            cache.put(i, i)
        assert len(cache) == 1000
        assert cache.stats.evictions == 0

    def test_hit_rate_accounting(self):
        cache = LRUCache(4)
        cache.put("a", 1)
        cache.get("a")
        cache.get("a")
        cache.get("b")
        assert cache.stats.hits == 2
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == pytest.approx(2 / 3)

    def test_peek_does_not_touch_recency_or_counters(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.peek("a")
        cache.put("c", 3)  # "a" is still stalest -> evicted
        assert "a" not in cache
        assert cache.stats.lookups == 0

    def test_pop_and_clear(self):
        cache = LRUCache(4)
        cache.put("a", 1)
        assert cache.pop("a") == 1
        assert cache.pop("a") is None
        cache.put("b", 2)
        cache.clear()
        assert len(cache) == 0
