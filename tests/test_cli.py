"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestCommands:
    def test_datasets(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "PubMed" in out and "Flicker" in out
        assert "2302925" in out  # published Flickr vertex count

    def test_plan(self, capsys):
        assert main(["plan", "TW", "--scale", "0.02", "--snapshots", "3"]) == 0
        out = capsys.readouterr().out
        assert "alpha=" in out
        assert "balance:" in out

    def test_compare(self, capsys):
        assert main(
            ["compare", "TW", "--scale", "0.02", "--snapshots", "3"]
        ) == 0
        out = capsys.readouterr().out
        for name in ("ReaDy", "DGNN-Booster", "RACE", "MEGA", "DiTile-DGNN"):
            assert name in out
        assert "1.00x" in out  # DiTile normalized to itself

    def test_area(self, capsys):
        assert main(["area"]) == 0
        out = capsys.readouterr().out
        assert "77.8" in out

    def test_reproduce_single_figure(self, capsys):
        assert main(
            ["reproduce", "figure14", "--scale", "0.02"]
        ) == 0
        out = capsys.readouterr().out
        assert "Figure 14" in out

    def test_reproduce_rejects_unknown_figure(self):
        with pytest.raises(SystemExit):
            main(["reproduce", "figure99"])

    def test_serve_synthetic(self, capsys):
        assert main(
            ["serve", "--events", "1500", "--vertices", "64",
             "--hidden-dim", "16", "--workers", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "windows served" in out
        assert "hit rate" in out
        assert "events/s" in out
        assert "ingest queue" in out

    def test_serve_dataset_replay(self, capsys):
        assert main(
            ["serve", "TW", "--scale", "0.02", "--snapshots", "4"]
        ) == 0
        out = capsys.readouterr().out
        assert "Twitter[events]" in out
        assert "windows served     3" in out  # T-1 transitions

    def test_serve_inline_workers(self, capsys):
        assert main(
            ["serve", "--events", "600", "--vertices", "32",
             "--hidden-dim", "16", "--workers", "0", "--window", "100"]
        ) == 0
        out = capsys.readouterr().out
        assert "windows served" in out

    def test_serve_rejects_bad_dataset(self):
        with pytest.raises(KeyError):
            main(["serve", "no-such-dataset"])
