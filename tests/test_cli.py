"""Unit tests for the command-line interface."""

import json
from pathlib import Path

import pytest

from repro.cli import build_parser, main

LINT_FIXTURES = Path(__file__).parent / "fixtures" / "lint"


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestCommands:
    def test_datasets(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "PubMed" in out and "Flicker" in out
        assert "2302925" in out  # published Flickr vertex count

    def test_plan(self, capsys):
        assert main(["plan", "TW", "--scale", "0.02", "--snapshots", "3"]) == 0
        out = capsys.readouterr().out
        assert "alpha=" in out
        assert "balance:" in out

    def test_compare(self, capsys):
        assert main(
            ["compare", "TW", "--scale", "0.02", "--snapshots", "3"]
        ) == 0
        out = capsys.readouterr().out
        for name in ("ReaDy", "DGNN-Booster", "RACE", "MEGA", "DiTile-DGNN"):
            assert name in out
        assert "1.00x" in out  # DiTile normalized to itself

    def test_area(self, capsys):
        assert main(["area"]) == 0
        out = capsys.readouterr().out
        assert "77.8" in out

    def test_reproduce_single_figure(self, capsys):
        assert main(
            ["reproduce", "figure14", "--scale", "0.02"]
        ) == 0
        out = capsys.readouterr().out
        assert "Figure 14" in out

    def test_reproduce_rejects_unknown_figure(self):
        with pytest.raises(SystemExit):
            main(["reproduce", "figure99"])

    def test_serve_synthetic(self, capsys):
        assert main(
            ["serve", "--events", "1500", "--vertices", "64",
             "--hidden-dim", "16", "--workers", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "windows served" in out
        assert "hit rate" in out
        assert "events/s" in out
        assert "ingest queue" in out

    def test_serve_dataset_replay(self, capsys):
        assert main(
            ["serve", "TW", "--scale", "0.02", "--snapshots", "4"]
        ) == 0
        out = capsys.readouterr().out
        assert "Twitter[events]" in out
        assert "windows served     3" in out  # T-1 transitions

    def test_serve_inline_workers(self, capsys):
        assert main(
            ["serve", "--events", "600", "--vertices", "32",
             "--hidden-dim", "16", "--workers", "0", "--window", "100"]
        ) == 0
        out = capsys.readouterr().out
        assert "windows served" in out

    def test_serve_rejects_bad_dataset(self):
        with pytest.raises(KeyError):
            main(["serve", "no-such-dataset"])

    def test_serve_sharded(self, capsys):
        assert main(
            ["serve", "--events", "800", "--vertices", "48", "--seed", "7",
             "--hidden-dim", "16", "--shards", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "windows served" in out
        assert "distribution" in out
        assert "2 shards" in out

    def test_serve_nonpositive_shards_is_single_process(self, capsys):
        assert main(
            ["serve", "--events", "300", "--vertices", "16",
             "--hidden-dim", "16", "--shards", "0"]
        ) == 0
        out = capsys.readouterr().out
        assert "windows served" in out
        assert "distribution" not in out

    def test_serve_pipeline_depth_flag(self, capsys):
        assert main(
            ["serve", "--events", "600", "--vertices", "32",
             "--hidden-dim", "16", "--pipeline-depth", "4"]
        ) == 0
        out = capsys.readouterr().out
        assert "depth=4" in out

    def _serve_results(self, tmp_path, name, *extra):
        out = tmp_path / f"{name}.json"
        assert main(
            ["serve", "--events", "800", "--vertices", "32", "--seed", "7",
             "--hidden-dim", "16", "--results-json", str(out), *extra]
        ) == 0
        return out.read_bytes()

    def test_results_json_byte_identical_across_depths_and_shards(
        self, tmp_path, capsys
    ):
        """The CI pipeline-parity gate in miniature: per-window result
        dumps byte-compare across pipeline depths and shard counts."""
        reference = self._serve_results(tmp_path, "ref", "--pipeline-depth", "1")
        payload = json.loads(reference)
        windows = payload["windows"]
        assert len(windows) > 4
        for entry in windows:
            assert {"index", "execution_cycles", "energy_joules",
                    "plan_decision"} <= entry.keys()
        assert reference == self._serve_results(
            tmp_path, "deep", "--pipeline-depth", "4"
        )
        assert reference == self._serve_results(
            tmp_path, "sharded", "--pipeline-depth", "2", "--shards", "2"
        )
        capsys.readouterr()


class TestLint:
    def test_clean_path_exits_zero(self, capsys):
        target = LINT_FIXTURES / "accel" / "good_units.py"
        assert main(["lint", str(target)]) == 0
        out = capsys.readouterr().out
        assert "clean: 1 files, 0 findings" in out

    def test_findings_exit_one(self, capsys):
        target = LINT_FIXTURES / "accel" / "bad_mixed_units.py"
        assert main(["lint", str(target)]) == 1
        out = capsys.readouterr().out
        assert "UNIT001" in out
        assert "1 finding in 1 file" in out

    def test_missing_path_exits_two(self, capsys):
        assert main(["lint", "does/not/exist.py"]) == 2
        assert "error:" in capsys.readouterr().out

    def test_unknown_rule_exits_two(self, capsys):
        target = LINT_FIXTURES / "accel" / "good_units.py"
        assert main(["lint", str(target), "--select", "NOPE999"]) == 2
        out = capsys.readouterr().out
        assert "error:" in out and "NOPE999" in out

    def test_select_restricts_to_named_rule(self, capsys):
        target = LINT_FIXTURES / "core"
        assert main(["lint", str(target), "--select", "DET002"]) == 1
        out = capsys.readouterr().out
        assert "DET002" in out
        assert "DET001" not in out

    def test_json_format(self, capsys):
        target = LINT_FIXTURES / "serving" / "bad_unlocked.py"
        assert main(["lint", str(target), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == 1
        assert payload["summary"]["by_rule"] == {"THR001": 1}

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("DET001", "DET002", "DET003",
                        "UNIT001", "UNIT002", "UNIT003", "THR001",
                        "MP001", "MP002", "MP003", "MP004", "MP005"):
            assert rule_id in out

    def test_sarif_format(self, capsys):
        target = LINT_FIXTURES / "dist" / "bad_shmem_leak.py"
        assert main(["lint", str(target), "--format", "sarif"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == "2.1.0"
        run = payload["runs"][0]
        rule_ids = [r["id"] for r in run["tool"]["driver"]["rules"]]
        assert "MP002" in rule_ids
        results = run["results"]
        assert all(r["ruleId"] == "MP002" for r in results)
        assert all(r["level"] == "error" for r in results)
        first = results[0]["locations"][0]["physicalLocation"]
        assert first["region"]["startLine"] >= 1
        assert results[0]["ruleIndex"] == rule_ids.index("MP002")

    def test_sarif_clean_run_has_no_results(self, capsys):
        target = LINT_FIXTURES / "dist" / "good_shmem_lifecycle.py"
        assert main(["lint", str(target), "--format", "sarif"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["runs"][0]["results"] == []

    def test_sarif_out_exports_from_the_gating_run(self, tmp_path, capsys):
        """--sarif-out writes the SARIF report next to the text gate in
        one invocation (CI runs lint once, not twice)."""
        target = LINT_FIXTURES / "dist" / "bad_shmem_leak.py"
        out = tmp_path / "reports" / "lint.sarif"
        assert main(["lint", str(target), "--sarif-out", str(out)]) == 1
        text = capsys.readouterr().out
        assert "MP002" in text  # the human-readable gate output
        payload = json.loads(out.read_text())
        assert payload["version"] == "2.1.0"
        assert any(
            r["ruleId"] == "MP002" for r in payload["runs"][0]["results"]
        )

    def test_sarif_out_clean_run_still_writes(self, tmp_path, capsys):
        target = LINT_FIXTURES / "dist" / "good_shmem_lifecycle.py"
        out = tmp_path / "lint.sarif"
        assert main(["lint", str(target), "--sarif-out", str(out)]) == 0
        capsys.readouterr()
        assert json.loads(out.read_text())["runs"][0]["results"] == []

    def test_explain_prints_rule_doc_and_example(self, capsys):
        assert main(["lint", "--explain", "MP002"]) == 0
        out = capsys.readouterr().out
        assert "MP002" in out
        assert "SharedMemory" in out
        assert "noqa[MP002]" in out

    def test_explain_is_case_insensitive(self, capsys):
        assert main(["lint", "--explain", "mp001"]) == 0
        assert "MP001" in capsys.readouterr().out

    def test_explain_unknown_rule_exits_two(self, capsys):
        assert main(["lint", "--explain", "NOPE999"]) == 2
        out = capsys.readouterr().out
        assert "error:" in out and "NOPE999" in out


class TestTrace:
    WORKLOAD = ["TW", "--scale", "0.02", "--snapshots", "3"]

    def test_trace_plan_prints_phase_breakdown(self, capsys):
        assert main(["trace", "plan", *self.WORKLOAD]) == 0
        out = capsys.readouterr().out
        assert "%parent" in out
        assert "tiling" in out and "parallelism" in out

    def test_trace_plan_exports_artifacts(self, tmp_path, capsys):
        out_dir = tmp_path / "traces"
        assert main(
            ["trace", "plan", *self.WORKLOAD, "--out", str(out_dir)]
        ) == 0
        from repro.obs import validate_trace_file

        assert validate_trace_file(out_dir / "trace.json") == []
        assert (out_dir / "spans.jsonl").exists()
        assert (out_dir / "phases.json").exists()

    def test_trace_compare_covers_simulator_phases(self, capsys):
        assert main(["trace", "compare", *self.WORKLOAD]) == 0
        out = capsys.readouterr().out
        for phase in ("simulate", "snapshot", "noc", "dram"):
            assert phase in out

    def test_trace_serve_synthetic(self, capsys):
        assert main(
            ["trace", "serve", "--events", "200", "--vertices", "48",
             "--workers", "0"]
        ) == 0
        out = capsys.readouterr().out
        assert "windows served" in out
        assert "serve" in out and "resolve" in out

    def test_trace_flag_on_plan(self, tmp_path, capsys):
        out_dir = tmp_path / "t"
        assert main(
            ["plan", *self.WORKLOAD, "--trace", str(out_dir)]
        ) == 0
        out = capsys.readouterr().out
        assert "alpha=" in out  # the command's own output still prints
        assert "%parent" in out
        assert (out_dir / "trace.json").exists()

    def test_trace_flag_on_serve(self, tmp_path, capsys):
        out_dir = tmp_path / "t"
        assert main(
            ["serve", "--events", "200", "--vertices", "48", "--workers", "0",
             "--trace", str(out_dir)]
        ) == 0
        out = capsys.readouterr().out
        assert "windows served" in out
        assert (out_dir / "trace.json").exists()

    def test_trace_requires_mode(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["trace"])

    def test_trace_format_json_rows_are_name_sorted(self, capsys):
        assert main(
            ["trace", "plan", *self.WORKLOAD, "--format", "json"]
        ) == 0
        out = capsys.readouterr().out
        payload = json.loads(out[out.index("{"):])
        names = [c["name"] for c in payload["phases"]["children"]]
        assert names == sorted(names)
        assert "shards" in payload and "shard_counters" in payload

    def test_trace_text_sort_name_is_stable(self, capsys):
        rows = []
        for _ in range(2):
            assert main(
                ["trace", "plan", *self.WORKLOAD, "--sort", "name"]
            ) == 0
            out = capsys.readouterr().out
            table = out[out.index("%parent"):]
            rows.append(
                [line.split()[0] for line in table.splitlines()[1:]
                 if line and not line.startswith(("trace ", "gauge",
                                                 "counter"))]
            )
        assert rows[0] == rows[1]

    def test_trace_serve_sharded_exports_merged_trace_and_slo(
        self, tmp_path, capsys
    ):
        out_dir = tmp_path / "t"
        assert main(
            ["trace", "serve", "--events", "600", "--vertices", "48",
             "--shards", "2", "--pipeline-depth", "2",
             "--out", str(out_dir), "--slo-json", str(out_dir / "slo.json")]
        ) == 0
        out = capsys.readouterr().out
        assert "SLO OK" in out
        assert "shard phase" in out
        payload = json.loads((out_dir / "trace.json").read_text())
        pids = {
            e["pid"] for e in payload["traceEvents"] if e.get("ph") == "X"
        }
        assert pids == {0, 1, 2}
        assert (out_dir / "shard_spans.jsonl").exists()
        assert (out_dir / "flame.folded").exists()
        assert json.loads((out_dir / "slo.json").read_text())["healthy"]


class TestSLOCommand:
    ARGS = ["--events", "600", "--vertices", "48", "--hidden-dim", "16"]

    def test_healthy_run_exits_zero(self, capsys):
        assert main(["slo", *self.ARGS]) == 0
        out = capsys.readouterr().out
        assert "SLO OK" in out
        assert "p95_window_latency" in out

    def test_violated_target_exits_one(self, capsys):
        assert main(["slo", *self.ARGS, "--p95-latency", "1e-9"]) == 1
        out = capsys.readouterr().out
        assert "SLO VIOLATED" in out
        assert "window(s) over the latency target" in out

    def test_json_format_and_artifact(self, tmp_path, capsys):
        out_path = tmp_path / "slo.json"
        assert main(
            ["slo", *self.ARGS, "--format", "json",
             "--slo-json", str(out_path)]
        ) == 0
        out = capsys.readouterr().out
        payload = json.loads(out[out.index("{"):out.rindex("}") + 1])
        assert payload["healthy"] is True
        assert json.loads(out_path.read_text()) == payload

    def test_sharded_run(self, capsys):
        assert main(["slo", *self.ARGS, "--shards", "2"]) == 0
        out = capsys.readouterr().out
        assert "restart_budget" in out

    def test_serve_slo_json_writes_report(self, tmp_path, capsys):
        out_path = tmp_path / "slo.json"
        assert main(
            ["serve", "--events", "300", "--vertices", "32",
             "--hidden-dim", "16", "--slo-json", str(out_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "SLO OK" in out
        assert json.loads(out_path.read_text())["healthy"] is True
