"""Unit tests for repro.core.comm_model (Eqs. 7-16), with hand-computed cases."""

import math

import pytest

from repro.core.comm_model import (
    CommunicationModel,
    ParallelFactors,
    WorkloadProfile,
)


@pytest.fixture
def profile():
    """L=2, T=8, AvgSV=100, AvgSE=400, Dis=0.1, alpha=2."""
    return WorkloadProfile(
        gnn_layers=2,
        num_snapshots=8,
        avg_subgraph_vertices=100.0,
        avg_subgraph_edges=400.0,
        dissimilarity=0.1,
        alpha=2,
    )


@pytest.fixture
def model(profile):
    return CommunicationModel(profile)


def _factors(profile, ns, nv):
    return ParallelFactors.from_groups(
        profile.num_snapshots, profile.avg_subgraph_vertices, ns, nv
    )


class TestWorkloadProfile:
    def test_validation(self):
        with pytest.raises(ValueError):
            WorkloadProfile(0, 8, 10, 20, 0.1)
        with pytest.raises(ValueError):
            WorkloadProfile(2, 0, 10, 20, 0.1)
        with pytest.raises(ValueError):
            WorkloadProfile(2, 8, 10, 20, 1.5)
        with pytest.raises(ValueError):
            WorkloadProfile(2, 8, 10, 20, 0.1, alpha=0)

    def test_from_graph(self, medium_graph):
        profile = WorkloadProfile.from_graph(medium_graph, 2, alpha=3)
        stats = medium_graph.stats()
        assert profile.avg_subgraph_vertices == pytest.approx(stats.avg_vertices / 3)
        assert profile.avg_subgraph_edges == pytest.approx(stats.avg_edges / 3)
        assert profile.dissimilarity == pytest.approx(stats.avg_dissimilarity)

    def test_avg_degree(self, profile):
        assert profile.avg_degree == 4.0


class TestParallelFactors:
    def test_from_groups(self, profile):
        factors = _factors(profile, 4, 2)
        assert factors.snapshots_per_tile == 2.0
        assert factors.vertices_per_tile == 50.0
        assert factors.tiles_used == 8

    def test_clamps_to_workload(self, profile):
        factors = ParallelFactors.from_groups(8, 100.0, 20, 500)
        assert factors.snapshot_groups == 8
        assert factors.vertex_groups == 100

    def test_rejects_bad_groups(self):
        with pytest.raises(ValueError):
            ParallelFactors.from_groups(8, 100.0, 0, 1)


class TestTemporalComm:
    def test_eq8_by_hand(self, model, profile):
        # Tcomm = alpha * AvgSV * (ceil(T/Ps) - 1) = 2 * 100 * (4 - 1).
        factors = _factors(profile, 4, 2)
        assert model.temporal_comm(factors) == pytest.approx(600.0)

    def test_single_group_has_no_temporal(self, model, profile):
        assert model.temporal_comm(_factors(profile, 1, 8)) == 0.0


class TestSpatialComm:
    def test_eq11_by_hand(self, model):
        # TotalScomm = alpha * L * T * AvgSE = 2 * 2 * 8 * 400.
        assert model.total_spatial_comm() == pytest.approx(12_800.0)

    def test_eq12_even_split(self, model, profile):
        # Pv = 25 divides AvgSV=100: intra fraction = Pv/AvgSV = 1/4.
        factors = _factors(profile, 1, 4)
        assert model.intra_tile_spatial_comm(factors) == pytest.approx(
            model.total_spatial_comm() / 4
        )

    def test_eq12_with_remainder(self, model, profile):
        # Pv = 100/3: floor(AvgSV/Pv)=3 full tiles, remainder 0.
        factors = _factors(profile, 1, 3)
        value = model.intra_tile_spatial_comm(factors)
        assert value == pytest.approx(model.total_spatial_comm() / 3, rel=0.05)

    def test_eq10_scomm(self, model, profile):
        factors = _factors(profile, 1, 4)
        assert model.spatial_comm(factors) == pytest.approx(
            model.total_spatial_comm() * 3 / 4
        )

    def test_single_tile_no_inter_comm(self, model, profile):
        factors = _factors(profile, 1, 1)
        assert model.spatial_comm(factors) == pytest.approx(0.0)


class TestRedundancy:
    def test_eq15_by_hand(self, model):
        # VScomm = sum_{l=1..2} sum_{l'=1..l} d^l' with d=4: (4) + (4+16).
        assert model.vertex_spatial_comm() == pytest.approx(24.0)

    def test_eq14_clamped(self, model):
        # Raw Eq. 14: 2*8*100*0.9*24 = 34,560 exceeds (1-Dis)*TotalScomm,
        # so the clamp binds at 0.9 * 12,800.
        assert model.total_redundant_spatial_comm() == pytest.approx(11_520.0)

    def test_eq14_unclamped_when_sparse(self):
        sparse = WorkloadProfile(1, 4, 100.0, 50.0, 0.2, alpha=1)
        model = CommunicationModel(sparse)
        # VScomm = 0.5; raw = 1*4*100*0.8*0.5 = 160 < 0.8 * (1*1*4*50) = 160.
        assert model.total_redundant_spatial_comm() == pytest.approx(160.0)

    def test_eq13_eq9_relationship(self, model, profile):
        factors = _factors(profile, 1, 4)
        scomm = model.spatial_comm(factors)
        rscomm = model.redundant_spatial_comm(factors)
        assert rscomm == pytest.approx(
            model.total_redundant_spatial_comm() * scomm / model.total_spatial_comm()
        )
        assert model.rf_spatial_comm(factors) == pytest.approx(scomm - rscomm)

    def test_rf_spatial_nonnegative(self, model, profile):
        for ns, nv in [(1, 8), (2, 4), (4, 2), (8, 1)]:
            assert model.rf_spatial_comm(_factors(profile, ns, nv)) >= 0.0


class TestReuseComm:
    def test_eq16_by_hand(self, model, profile):
        # boundaries = 3, per-vertex reuse capped at L*deg = 8 (< VScomm=24):
        # ReComm = 2 * 3 * 100 * 0.9 * 8.
        factors = _factors(profile, 4, 2)
        assert model.reuse_comm(factors) == pytest.approx(4_320.0)

    def test_no_boundaries_no_reuse(self, model, profile):
        assert model.reuse_comm(_factors(profile, 1, 8)) == 0.0

    def test_full_dissimilarity_kills_reuse(self):
        profile = WorkloadProfile(2, 8, 100.0, 400.0, 1.0, alpha=1)
        model = CommunicationModel(profile)
        factors = ParallelFactors.from_groups(8, 100.0, 4, 2)
        assert model.reuse_comm(factors) == 0.0


class TestTotalComm:
    def test_eq7_sum(self, model, profile):
        factors = _factors(profile, 4, 2)
        breakdown = model.breakdown(factors)
        assert breakdown.total == pytest.approx(
            breakdown.temporal + breakdown.rf_spatial + breakdown.reuse
        )
        assert model.total_comm(factors) == pytest.approx(breakdown.total)

    def test_dissimilarity_monotonicity(self, profile):
        # More dissimilarity -> less redundancy discount -> more spatial
        # traffic at a spatial mapping.
        totals = []
        for dis in (0.05, 0.3, 0.8):
            p = WorkloadProfile(2, 8, 100.0, 400.0, dis, alpha=2)
            m = CommunicationModel(p)
            totals.append(m.total_comm(_factors(p, 1, 8)))
        assert totals == sorted(totals)
