"""Unit tests for continuous-time dynamic graphs and discretization."""

import numpy as np
import pytest

from repro.graphs.continuous import (
    ContinuousDynamicGraph,
    EdgeEvent,
    window_index,
)
from repro.graphs.dynamic import DynamicGraph
from repro.graphs.snapshot import GraphSnapshot


def _ctdg(events, n=4, name="ct"):
    return ContinuousDynamicGraph(GraphSnapshot.empty(n), events, name=name)


class TestEdgeEvent:
    def test_validation(self):
        with pytest.raises(ValueError):
            EdgeEvent(0.0, 0, 1, kind="toggle")
        with pytest.raises(ValueError):
            EdgeEvent(0.0, -1, 1)

    def test_ordering_by_time(self):
        early = EdgeEvent(1.0, 3, 2)
        late = EdgeEvent(2.0, 0, 1)
        assert sorted([late, early])[0] is early


class TestContinuousGraph:
    def test_events_sorted_on_construction(self):
        graph = _ctdg([EdgeEvent(2.0, 0, 1), EdgeEvent(1.0, 1, 2)])
        assert [e.time for e in graph.events] == [1.0, 2.0]

    def test_vertex_space_inferred(self):
        graph = _ctdg([EdgeEvent(1.0, 0, 9)], n=4)
        assert graph.num_vertices == 10

    def test_time_span(self):
        graph = _ctdg([EdgeEvent(1.0, 0, 1), EdgeEvent(5.0, 1, 2)])
        assert graph.time_span == (1.0, 5.0)
        assert _ctdg([]).time_span == (0.0, 0.0)

    def test_edges_at_applies_prefix(self):
        graph = _ctdg(
            [
                EdgeEvent(1.0, 0, 1),
                EdgeEvent(2.0, 1, 2),
                EdgeEvent(3.0, 0, 1, kind="remove"),
            ]
        )
        assert graph.edges_at(0.5) == set()
        assert graph.edges_at(1.5) == {(0, 1)}
        assert graph.edges_at(2.5) == {(0, 1), (1, 2)}
        assert graph.edges_at(3.5) == {(1, 2)}

    def test_initial_graph_preserved(self):
        initial = GraphSnapshot.from_edges(4, [(2, 3)])
        graph = ContinuousDynamicGraph(initial, [EdgeEvent(1.0, 0, 1)])
        assert graph.edges_at(0.0) == {(2, 3)}
        assert graph.edges_at(1.0) == {(2, 3), (0, 1)}

    def test_remove_of_absent_edge_is_noop(self):
        graph = _ctdg([EdgeEvent(1.0, 0, 1, kind="remove")])
        assert graph.edges_at(2.0) == set()

    def test_snapshot_at(self):
        graph = _ctdg([EdgeEvent(1.0, 0, 1)])
        snapshot = graph.snapshot_at(1.0, feature_dim=7)
        assert snapshot.has_edge(0, 1)
        assert snapshot.feature_dim == 7

    def test_from_event_arrays(self):
        graph = ContinuousDynamicGraph.from_event_arrays(
            4, np.array([1.0, 2.0]), np.array([0, 1]), np.array([1, 2])
        )
        assert graph.num_events == 2
        with pytest.raises(ValueError):
            ContinuousDynamicGraph.from_event_arrays(
                4, np.array([1.0]), np.array([0, 1]), np.array([1])
            )


class TestDiscretize:
    def test_rejects_bad_count(self):
        with pytest.raises(ValueError):
            _ctdg([]).discretize(0)

    def test_last_snapshot_includes_all_events(self):
        graph = _ctdg(
            [EdgeEvent(float(t), t % 3, (t + 1) % 3) for t in range(1, 7)],
            n=3,
        )
        discrete = graph.discretize(3)
        assert discrete.num_snapshots == 3
        assert discrete[2].edge_set() == graph.edges_at(6.0)

    def test_snapshots_grow_under_pure_additions(self):
        events = [EdgeEvent(float(t), t, t + 1) for t in range(1, 9)]
        discrete = _ctdg(events, n=10).discretize(4)
        counts = [s.num_edges for s in discrete]
        assert counts == sorted(counts)
        assert counts[-1] == 8

    def test_empty_stream_repeats_initial(self):
        initial = GraphSnapshot.from_edges(3, [(0, 1)])
        discrete = ContinuousDynamicGraph(initial, []).discretize(3)
        for snapshot in discrete:
            assert snapshot.edge_set() == {(0, 1)}

    def test_discretized_feeds_dgnn_pipeline(self):
        from repro.core import DGNNSpec
        from repro.ditile import DiTileAccelerator

        events = [
            EdgeEvent(float(t), t % 20, (t * 7 + 1) % 20) for t in range(1, 200)
        ]
        discrete = _ctdg(events, n=20).discretize(4)
        spec = DGNNSpec(gcn_dims=(8, 8), rnn_hidden_dim=8)
        result = DiTileAccelerator().simulate(discrete, spec)
        assert result.execution_cycles > 0


class TestWindowIndex:
    def test_origin_event_in_window_zero(self):
        assert window_index(0.0, 0.0, 2.0) == 0

    def test_boundary_event_belongs_to_closing_window(self):
        # An event exactly on a window's upper boundary is included in
        # that window, matching the inclusive prefix of ``edges_at``.
        assert window_index(2.0, 0.0, 2.0) == 0
        assert window_index(4.0, 0.0, 2.0) == 1
        assert window_index(2.0 + 1e-9, 0.0, 2.0) == 1

    def test_pre_origin_clamps_to_zero(self):
        assert window_index(-5.0, 0.0, 2.0) == 0

    def test_rejects_nonpositive_window(self):
        with pytest.raises(ValueError):
            window_index(1.0, 0.0, 0.0)


class TestDiscretizeWindows:
    def _builder_windows(self, graph, window, origin=None, feature_dim=None):
        """Reference: the serving ingest path over the same stream."""
        from repro.serving.ingest import WindowedIngestor

        ingestor = WindowedIngestor.for_stream(
            graph, window, feature_dim=feature_dim, origin=origin
        )
        return [w.snapshot for w in ingestor.windows(graph.events)]

    def assert_parity(self, graph, window, origin=None):
        offline = graph.discretize_windows(window, origin=origin)
        online = self._builder_windows(graph, window, origin=origin)
        assert offline.num_snapshots == len(online)
        for a, b in zip(offline, online):
            assert a == b
        return offline

    def test_rejects_nonpositive_window(self):
        with pytest.raises(ValueError):
            _ctdg([]).discretize_windows(0.0)

    def test_empty_stream_single_window(self):
        initial = GraphSnapshot.from_edges(3, [(0, 1)])
        graph = ContinuousDynamicGraph(initial, [])
        discrete = self.assert_parity(graph, 1.0)
        assert discrete.num_snapshots == 1
        assert discrete[0].edge_set() == {(0, 1)}

    def test_empty_windows_repeat_predecessor(self):
        # A long gap in the stream produces windows with no events; each
        # still emits a snapshot equal to the previous one.
        graph = _ctdg([EdgeEvent(0.0, 0, 1), EdgeEvent(10.0, 1, 2)])
        discrete = self.assert_parity(graph, 2.0)
        assert discrete.num_snapshots == 5
        for t in range(4):
            assert discrete[t].edge_set() == {(0, 1)}
        assert discrete[4].edge_set() == {(0, 1), (1, 2)}

    def test_event_exactly_on_boundary(self):
        graph = _ctdg(
            [EdgeEvent(0.0, 0, 1), EdgeEvent(2.0, 1, 2), EdgeEvent(2.5, 2, 3)]
        )
        discrete = self.assert_parity(graph, 2.0)
        # t=2.0 sits exactly on window 0's closing boundary -> window 0.
        assert discrete[0].edge_set() == {(0, 1), (1, 2)}
        assert discrete[1].edge_set() == {(0, 1), (1, 2), (2, 3)}

    def test_out_of_order_events_within_window(self):
        shuffled = [
            EdgeEvent(3.0, 2, 3),
            EdgeEvent(1.0, 0, 1),
            EdgeEvent(2.0, 1, 2),
            EdgeEvent(2.5, 1, 2, kind="remove"),
        ]
        graph = _ctdg(shuffled)
        discrete = self.assert_parity(graph, 10.0)
        assert discrete.num_snapshots == 1
        assert discrete[0].edge_set() == {(0, 1), (2, 3)}

    def test_remove_before_add_is_noop_then_add(self):
        # Sorted by time, the remove precedes the (re-)add: the edge must
        # survive, and removing an absent edge must not corrupt state.
        graph = _ctdg(
            [EdgeEvent(1.0, 0, 1, kind="remove"), EdgeEvent(2.0, 0, 1)]
        )
        discrete = self.assert_parity(graph, 5.0)
        assert discrete[0].edge_set() == {(0, 1)}

    def test_add_remove_same_timestamp_resolves_to_remove(self):
        # EdgeEvent ordering breaks the (time, src, dst) tie by kind, with
        # "add" < "remove" — both paths must apply them in that order.
        graph = _ctdg(
            [EdgeEvent(1.0, 0, 1, kind="remove"), EdgeEvent(1.0, 0, 1, kind="add")]
        )
        discrete = self.assert_parity(graph, 1.0)
        assert discrete[0].edge_set() == set()

    def test_churn_within_window_nets_out(self):
        graph = _ctdg(
            [
                EdgeEvent(1.0, 0, 1),
                EdgeEvent(1.5, 0, 1, kind="remove"),
                EdgeEvent(1.8, 0, 1),
                EdgeEvent(2.2, 2, 3),
                EdgeEvent(2.4, 2, 3, kind="remove"),
            ]
        )
        discrete = self.assert_parity(graph, 10.0)
        assert discrete[0].edge_set() == {(0, 1)}

    def test_explicit_origin(self):
        graph = _ctdg([EdgeEvent(1.0, 0, 1), EdgeEvent(2.0, 1, 2)])
        discrete = self.assert_parity(graph, 1.0, origin=0.0)
        assert discrete.num_snapshots == 2
        assert discrete[0].edge_set() == {(0, 1)}
        assert discrete[1].edge_set() == {(0, 1), (1, 2)}

    def test_num_windows_covers_span(self):
        graph = _ctdg([EdgeEvent(0.0, 0, 1), EdgeEvent(7.1, 1, 2)])
        assert graph.num_windows(2.0) == 4
        assert _ctdg([]).num_windows(2.0) == 1

    def test_feature_dim_override(self):
        graph = _ctdg([EdgeEvent(1.0, 0, 1)])
        discrete = graph.discretize_windows(1.0, feature_dim=9)
        assert discrete.feature_dim == 9


class TestFromSnapshots:
    def test_replay_recovers_snapshots(self):
        rng = np.random.default_rng(5)
        snapshots = [
            GraphSnapshot.from_edges(
                12, {(int(a), int(b)) for a, b in rng.integers(0, 12, (20, 2))}
            )
            for _ in range(4)
        ]
        graph = DynamicGraph(snapshots, name="replayed")
        stream = ContinuousDynamicGraph.from_snapshots(graph)
        assert stream.initial == graph[0]
        # With unit windows anchored at 0, window k reproduces snapshot k+1.
        discrete = stream.discretize_windows(1.0, origin=0.0)
        assert discrete.num_snapshots == graph.num_snapshots - 1
        for t in range(1, graph.num_snapshots):
            assert discrete[t - 1] == graph[t]

    def test_single_snapshot_graph_yields_empty_stream(self):
        graph = DynamicGraph([GraphSnapshot.from_edges(3, [(0, 1)])])
        stream = ContinuousDynamicGraph.from_snapshots(graph)
        assert stream.num_events == 0
