"""Unit tests for continuous-time dynamic graphs and discretization."""

import numpy as np
import pytest

from repro.graphs.continuous import ContinuousDynamicGraph, EdgeEvent
from repro.graphs.snapshot import GraphSnapshot


def _ctdg(events, n=4, name="ct"):
    return ContinuousDynamicGraph(GraphSnapshot.empty(n), events, name=name)


class TestEdgeEvent:
    def test_validation(self):
        with pytest.raises(ValueError):
            EdgeEvent(0.0, 0, 1, kind="toggle")
        with pytest.raises(ValueError):
            EdgeEvent(0.0, -1, 1)

    def test_ordering_by_time(self):
        early = EdgeEvent(1.0, 3, 2)
        late = EdgeEvent(2.0, 0, 1)
        assert sorted([late, early])[0] is early


class TestContinuousGraph:
    def test_events_sorted_on_construction(self):
        graph = _ctdg([EdgeEvent(2.0, 0, 1), EdgeEvent(1.0, 1, 2)])
        assert [e.time for e in graph.events] == [1.0, 2.0]

    def test_vertex_space_inferred(self):
        graph = _ctdg([EdgeEvent(1.0, 0, 9)], n=4)
        assert graph.num_vertices == 10

    def test_time_span(self):
        graph = _ctdg([EdgeEvent(1.0, 0, 1), EdgeEvent(5.0, 1, 2)])
        assert graph.time_span == (1.0, 5.0)
        assert _ctdg([]).time_span == (0.0, 0.0)

    def test_edges_at_applies_prefix(self):
        graph = _ctdg(
            [
                EdgeEvent(1.0, 0, 1),
                EdgeEvent(2.0, 1, 2),
                EdgeEvent(3.0, 0, 1, kind="remove"),
            ]
        )
        assert graph.edges_at(0.5) == set()
        assert graph.edges_at(1.5) == {(0, 1)}
        assert graph.edges_at(2.5) == {(0, 1), (1, 2)}
        assert graph.edges_at(3.5) == {(1, 2)}

    def test_initial_graph_preserved(self):
        initial = GraphSnapshot.from_edges(4, [(2, 3)])
        graph = ContinuousDynamicGraph(initial, [EdgeEvent(1.0, 0, 1)])
        assert graph.edges_at(0.0) == {(2, 3)}
        assert graph.edges_at(1.0) == {(2, 3), (0, 1)}

    def test_remove_of_absent_edge_is_noop(self):
        graph = _ctdg([EdgeEvent(1.0, 0, 1, kind="remove")])
        assert graph.edges_at(2.0) == set()

    def test_snapshot_at(self):
        graph = _ctdg([EdgeEvent(1.0, 0, 1)])
        snapshot = graph.snapshot_at(1.0, feature_dim=7)
        assert snapshot.has_edge(0, 1)
        assert snapshot.feature_dim == 7

    def test_from_event_arrays(self):
        graph = ContinuousDynamicGraph.from_event_arrays(
            4, np.array([1.0, 2.0]), np.array([0, 1]), np.array([1, 2])
        )
        assert graph.num_events == 2
        with pytest.raises(ValueError):
            ContinuousDynamicGraph.from_event_arrays(
                4, np.array([1.0]), np.array([0, 1]), np.array([1])
            )


class TestDiscretize:
    def test_rejects_bad_count(self):
        with pytest.raises(ValueError):
            _ctdg([]).discretize(0)

    def test_last_snapshot_includes_all_events(self):
        graph = _ctdg(
            [EdgeEvent(float(t), t % 3, (t + 1) % 3) for t in range(1, 7)],
            n=3,
        )
        discrete = graph.discretize(3)
        assert discrete.num_snapshots == 3
        assert discrete[2].edge_set() == graph.edges_at(6.0)

    def test_snapshots_grow_under_pure_additions(self):
        events = [EdgeEvent(float(t), t, t + 1) for t in range(1, 9)]
        discrete = _ctdg(events, n=10).discretize(4)
        counts = [s.num_edges for s in discrete]
        assert counts == sorted(counts)
        assert counts[-1] == 8

    def test_empty_stream_repeats_initial(self):
        initial = GraphSnapshot.from_edges(3, [(0, 1)])
        discrete = ContinuousDynamicGraph(initial, []).discretize(3)
        for snapshot in discrete:
            assert snapshot.edge_set() == {(0, 1)}

    def test_discretized_feeds_dgnn_pipeline(self):
        from repro.core import DGNNSpec
        from repro.ditile import DiTileAccelerator

        events = [
            EdgeEvent(float(t), t % 20, (t * 7 + 1) % 20) for t in range(1, 200)
        ]
        discrete = _ctdg(events, n=20).discretize(4)
        spec = DGNNSpec(gcn_dims=(8, 8), rnn_hidden_dim=8)
        result = DiTileAccelerator().simulate(discrete, spec)
        assert result.execution_cycles > 0
