"""Cross-model consistency checks.

The library models the same physics at several fidelities (closed-form
comm model vs routed traffic matrices; aggregate simulator vs round-level
pipeline; Eq. 6 vs measured refetch).  These tests pin the models to each
other: coarse and fine estimates must agree in trend and within bounded
factors, or one of them is wrong.
"""

import numpy as np
import pytest

from repro.accel.config import HardwareConfig
from repro.accel.noc import NoCModel, NoCTraffic
from repro.accel.pipeline import PipelineSimulator
from repro.accel.routing import TrafficMatrixRouter
from repro.core.comm_model import CommunicationModel, WorkloadProfile
from repro.core.parallelism import ParallelismOptimizer
from repro.ditile import DiTileAccelerator
from repro.graphs.generators import generate_dynamic_graph
from repro.graphs.partition import contiguous_vertex_partition, edge_cut


class TestNoCConsistency:
    """Aggregate hop model vs explicit routing."""

    @pytest.mark.parametrize("topology", ["ditile", "mesh", "crossbar"])
    def test_avg_hops_within_factor_of_routed(self, topology, rng):
        hardware = HardwareConfig.small().normalized(topology)
        router = TrafficMatrixRouter(hardware)
        model = NoCModel(hardware)
        tiles = hardware.total_tiles
        traffic = np.zeros((tiles, tiles))
        # Uniform irregular traffic restricted to columns for ditile
        # (its spatial class never leaves a column under the Fig. 6 map).
        for src in range(tiles):
            for dst in range(tiles):
                if src == dst:
                    continue
                same_column = src % 4 == dst % 4
                if topology != "ditile" or same_column:
                    traffic[src, dst] = 1.0
        routed = router.route_matrix(traffic, regular=False)
        modeled = model.avg_hops(regular=False)
        assert routed.avg_hops == pytest.approx(modeled, rel=0.5)

    def test_routed_hops_never_below_one(self):
        hardware = HardwareConfig.small()
        router = TrafficMatrixRouter(hardware)
        traffic = np.zeros((16, 16))
        traffic[2, 10] = 64.0
        report = router.route_matrix(traffic, regular=False)
        assert report.avg_hops >= 1.0


class TestCommModelVsMeasuredCut:
    def test_spatial_model_tracks_measured_edge_cut(self):
        """Eq. 10's cross-partition share must match the measured cut of a
        random (contiguous-over-shuffled-ids) partition within a few
        percent."""
        graph = generate_dynamic_graph(400, 4000, 2, seed=3)
        snapshot = graph[0]
        for parts in (2, 4, 8):
            partition = contiguous_vertex_partition(snapshot.num_vertices, parts)
            measured_fraction = edge_cut(snapshot, partition) / snapshot.num_edges
            modeled_fraction = 1.0 - 1.0 / parts
            assert measured_fraction == pytest.approx(modeled_fraction, abs=0.05)


class TestSimulatorVsPipeline:
    def test_agreement_within_order_of_magnitude(self):
        graph = generate_dynamic_graph(
            250, 2000, 5, dissimilarity=0.1, feature_dim=48, seed=4
        )
        from repro.core.plan import DGNNSpec

        spec = DGNNSpec.classic(48, hidden_dim=16)
        model = DiTileAccelerator()
        aggregate = model.simulate(graph, spec)
        pipeline = PipelineSimulator(model.hardware).run(model.plan(graph, spec))
        # The pipeline model has no DRAM term, so compare its makespan to
        # the aggregate's on-chip portion.
        on_chip = max(aggregate.cycles.compute, aggregate.cycles.on_chip)
        ratio = pipeline.makespan_cycles / max(on_chip, 1.0)
        assert 0.2 <= ratio <= 8.0

    def test_both_rank_balanced_above_natural(self):
        from repro.core.plan import DGNNSpec
        from repro.core.scheduler import DiTileScheduler, SchedulerOptions

        graph = generate_dynamic_graph(
            250, 2000, 5, dissimilarity=0.1, feature_dim=48, seed=5
        )
        spec = DGNNSpec.classic(48, hidden_dim=16)
        hw = HardwareConfig.small()
        simulator = PipelineSimulator(hw)
        results = {}
        for name, options in [
            ("balanced", SchedulerOptions()),
            ("natural", SchedulerOptions(enable_balance=False)),
        ]:
            plan = DiTileScheduler(
                hw.total_tiles, float(hw.distributed_buffer_bytes), options
            ).plan(graph, spec)
            results[name] = simulator.run(plan).makespan_cycles
        assert results["balanced"] <= results["natural"] * 1.001


class TestOptimizerVsSimulatedChoice:
    def test_chosen_mapping_not_dominated(self):
        """The Algorithm 1 choice must not lose badly to either static
        strategy when actually simulated (the comm model is a proxy, but
        it should not pick a disastrous mapping)."""
        from repro.core.plan import DGNNSpec

        graph = generate_dynamic_graph(
            300, 2400, 8, dissimilarity=0.1, feature_dim=32, seed=6
        )
        spec = DGNNSpec.classic(32, hidden_dim=16)
        profile = WorkloadProfile.from_graph(graph, spec.num_gnn_layers)
        optimizer = ParallelismOptimizer(profile, 16)
        chosen = optimizer.optimize().total_comm
        strategies = optimizer.compare_static_strategies()
        worst = max(
            strategies["temporal"].total_comm, strategies["spatial"].total_comm
        )
        assert chosen <= worst


class TestEnergyTimingConsistency:
    def test_noc_energy_tracks_byte_hops(self):
        hardware = HardwareConfig.small()
        model = NoCModel(hardware)
        small = model.byte_hops(NoCTraffic(spatial_bytes=1000))
        large = model.byte_hops(NoCTraffic(spatial_bytes=4000))
        assert large == pytest.approx(4 * small)
