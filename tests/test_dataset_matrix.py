"""Cross-dataset matrix: the headline claim must hold on every Table 1
dataset at test scale."""

import pytest

from repro.baselines import ReaDyAccelerator
from repro.ditile import DiTileAccelerator
from repro.experiments.runner import ExperimentConfig, ExperimentRunner
from repro.graphs.datasets import dataset_names

TINY = ExperimentConfig(scale=0.015, snapshots=3, large_dataset_shrink=0.1)


@pytest.mark.parametrize("dataset", dataset_names())
class TestEveryDataset:
    def test_ditile_beats_ready(self, dataset):
        runner = ExperimentRunner(TINY)
        graph = runner.graph(dataset)
        spec = runner.spec(dataset)
        ditile = DiTileAccelerator(runner.hardware).simulate(graph, spec)
        ready = ReaDyAccelerator(runner.hardware).simulate(graph, spec)
        assert ditile.execution_cycles < ready.execution_cycles
        assert ditile.energy_joules < ready.energy_joules
        assert ditile.total_macs < ready.total_macs
        assert ditile.dram_bytes < ready.dram_bytes

    def test_plan_is_feasible(self, dataset):
        runner = ExperimentRunner(TINY)
        graph = runner.graph(dataset)
        spec = runner.spec(dataset)
        model = DiTileAccelerator(runner.hardware)
        plan = model.plan(graph, spec)
        assert plan.factors.tiles_used <= runner.hardware.total_tiles
        assert plan.tiling.alpha >= 1
        assert plan.workload.partition.sizes().sum() == graph.max_vertices
