"""Unit tests for repro.graphs.datasets (Table 1 registry)."""

import pytest

from repro.graphs.datasets import (
    TABLE1_DATASETS,
    dataset_names,
    dataset_profile,
    load_dataset,
)


class TestRegistry:
    def test_six_datasets(self):
        assert len(TABLE1_DATASETS) == 6
        assert dataset_names() == [
            "PubMed", "Reddit", "Mobile", "Twitter", "Wikipedia", "Flicker",
        ]

    def test_table1_published_counts(self):
        wd = dataset_profile("Wikipedia")
        assert (wd.vertices, wd.edges, wd.feature_dim) == (9_227, 157_474, 172)
        rd = dataset_profile("Reddit")
        assert (rd.vertices, rd.edges, rd.feature_dim) == (55_863, 858_490, 602)
        fk = dataset_profile("Flicker")
        assert (fk.vertices, fk.edges, fk.feature_dim) == (2_302_925, 33_140_017, 800)

    def test_lookup_by_abbreviation(self):
        assert dataset_profile("WD").name == "Wikipedia"
        assert dataset_profile("pm").name == "PubMed"
        assert dataset_profile("flickr").name == "Flicker"

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            dataset_profile("nope")

    def test_dissimilarity_in_paper_band(self):
        # §7.7: real dynamic graphs vary from 4.1% to 13.3%.
        for profile in TABLE1_DATASETS:
            assert 0.041 <= profile.dissimilarity <= 0.133


class TestScaling:
    def test_scaled_preserves_ratio(self):
        profile = dataset_profile("Reddit")
        scaled = profile.scaled(0.1)
        original_ratio = profile.vertex_to_edge_ratio
        assert scaled.vertex_to_edge_ratio == pytest.approx(
            original_ratio, rel=0.05
        )

    def test_scale_one_is_identity(self):
        profile = dataset_profile("Twitter")
        assert profile.scaled(1.0) is profile

    def test_scale_floor(self):
        scaled = dataset_profile("PubMed").scaled(0.001)
        assert scaled.vertices >= 64
        assert scaled.edges >= 2 * scaled.vertices

    def test_rejects_bad_scale(self):
        with pytest.raises(ValueError):
            dataset_profile("PubMed").scaled(0.0)
        with pytest.raises(ValueError):
            dataset_profile("PubMed").scaled(2.0)


class TestLoadDataset:
    def test_load_matches_profile(self):
        graph = load_dataset("Wikipedia", scale=0.05, seed=1)
        profile = dataset_profile("Wikipedia").scaled(0.05)
        stats = graph.stats()
        assert stats.num_snapshots == profile.snapshots
        assert stats.feature_dim == profile.feature_dim
        assert stats.avg_vertices == pytest.approx(profile.vertices, rel=0.01)
        assert stats.avg_edges == pytest.approx(profile.edges, rel=0.1)

    def test_load_overrides(self):
        graph = load_dataset(
            "TW", scale=0.05, snapshots=3, dissimilarity=0.25, seed=2
        )
        assert graph.num_snapshots == 3
        assert graph.avg_dissimilarity() == pytest.approx(0.25, abs=0.1)

    def test_load_with_features(self):
        graph = load_dataset("WD", scale=0.02, seed=3, with_features=True)
        assert graph[0].features is not None

    def test_load_deterministic(self):
        a = load_dataset("TW", scale=0.03, seed=4)
        b = load_dataset("TW", scale=0.03, seed=4)
        assert a[1] == b[1]
