"""Unit tests for repro.graphs.delta (deltas + deletion-to-addition)."""

import numpy as np

from repro.graphs.delta import (
    addition_only_schedule,
    common_core,
    snapshot_delta,
)
from repro.graphs.dynamic import DynamicGraph
from repro.graphs.generators import generate_dynamic_graph
from repro.graphs.snapshot import GraphSnapshot


def _snap(edges, n=5):
    return GraphSnapshot.from_edges(n, edges)


class TestSnapshotDelta:
    def test_pure_addition(self):
        delta = snapshot_delta(_snap([(0, 1)]), _snap([(0, 1), (1, 2)]))
        assert delta.num_added == 1
        assert delta.num_removed == 0
        assert (delta.added_src[0], delta.added_dst[0]) == (1, 2)

    def test_pure_deletion(self):
        delta = snapshot_delta(_snap([(0, 1), (1, 2)]), _snap([(0, 1)]))
        assert delta.num_added == 0
        assert delta.num_removed == 1

    def test_mixed_changes(self):
        delta = snapshot_delta(_snap([(0, 1), (1, 2)]), _snap([(0, 1), (2, 3)]))
        assert delta.num_added == 1
        assert delta.num_removed == 1
        assert delta.num_changes == 2

    def test_identical_snapshots(self):
        snapshot = _snap([(0, 1), (1, 2)])
        delta = snapshot_delta(snapshot, snapshot)
        assert delta.num_changes == 0

    def test_touched_vertices_are_destinations(self):
        delta = snapshot_delta(_snap([(0, 1), (1, 2)]), _snap([(0, 1), (2, 3)]))
        np.testing.assert_array_equal(delta.touched_vertices(), [2, 3])

    def test_growing_vertex_space(self):
        delta = snapshot_delta(_snap([(0, 1)], n=2), _snap([(0, 1), (2, 3)], n=4))
        assert delta.num_added == 1
        assert delta.num_removed == 0


class TestCommonCore:
    def test_core_is_intersection(self):
        prev = _snap([(0, 1), (1, 2), (2, 3)])
        cur = _snap([(0, 1), (2, 3), (3, 4)])
        core = common_core(prev, cur)
        assert core.edge_set() == {(0, 1), (2, 3)}

    def test_both_reachable_by_additions(self):
        prev = _snap([(0, 1), (1, 2)])
        cur = _snap([(0, 1), (2, 3)])
        core = common_core(prev, cur)
        assert core.edge_set() <= prev.edge_set()
        assert core.edge_set() <= cur.edge_set()

    def test_core_of_identical_snapshots(self):
        snapshot = _snap([(0, 1), (1, 2)])
        core = common_core(snapshot, snapshot)
        assert core.edge_set() == snapshot.edge_set()


class TestAdditionOnlySchedule:
    def test_schedule_counts(self):
        graph = DynamicGraph(
            [_snap([(0, 1), (1, 2)]), _snap([(0, 1), (2, 3)])]
        )
        steps = addition_only_schedule(graph)
        assert len(steps) == 1
        step = steps[0]
        assert step.timestamp == 1
        assert step.core_edges == 1
        assert step.edges_to_add == 1
        assert step.direct_deletions == 1
        assert step.avoided_deletions == 1

    def test_schedule_eliminates_all_deletions(self):
        graph = generate_dynamic_graph(100, 400, 5, dissimilarity=0.2, seed=2)
        for step in addition_only_schedule(graph):
            # Reconstructing from the core requires only additions.
            assert step.edges_to_add >= 0
            assert step.core_edges >= 0
            # Core + additions rebuilds the new snapshot exactly.
            assert step.core_edges + step.edges_to_add == graph[
                step.timestamp
            ].num_edges

    def test_single_snapshot_graph(self):
        graph = DynamicGraph([_snap([(0, 1)])])
        assert addition_only_schedule(graph) == []
