"""Unit tests for repro.graphs.delta (deltas + deletion-to-addition)."""

import numpy as np

from repro.graphs.delta import (
    addition_only_schedule,
    apply_delta,
    common_core,
    merge_deltas,
    snapshot_delta,
    split_delta,
)
from repro.graphs.dynamic import DynamicGraph
from repro.graphs.generators import generate_dynamic_graph
from repro.graphs.snapshot import GraphSnapshot


def _snap(edges, n=5):
    return GraphSnapshot.from_edges(n, edges)


class TestSnapshotDelta:
    def test_pure_addition(self):
        delta = snapshot_delta(_snap([(0, 1)]), _snap([(0, 1), (1, 2)]))
        assert delta.num_added == 1
        assert delta.num_removed == 0
        assert (delta.added_src[0], delta.added_dst[0]) == (1, 2)

    def test_pure_deletion(self):
        delta = snapshot_delta(_snap([(0, 1), (1, 2)]), _snap([(0, 1)]))
        assert delta.num_added == 0
        assert delta.num_removed == 1

    def test_mixed_changes(self):
        delta = snapshot_delta(_snap([(0, 1), (1, 2)]), _snap([(0, 1), (2, 3)]))
        assert delta.num_added == 1
        assert delta.num_removed == 1
        assert delta.num_changes == 2

    def test_identical_snapshots(self):
        snapshot = _snap([(0, 1), (1, 2)])
        delta = snapshot_delta(snapshot, snapshot)
        assert delta.num_changes == 0

    def test_touched_vertices_are_destinations(self):
        delta = snapshot_delta(_snap([(0, 1), (1, 2)]), _snap([(0, 1), (2, 3)]))
        np.testing.assert_array_equal(delta.touched_vertices(), [2, 3])

    def test_growing_vertex_space(self):
        delta = snapshot_delta(_snap([(0, 1)], n=2), _snap([(0, 1), (2, 3)], n=4))
        assert delta.num_added == 1
        assert delta.num_removed == 0


class TestApplyDelta:
    def test_inverse_of_snapshot_delta(self):
        prev = _snap([(0, 1), (1, 2), (2, 3)])
        cur = _snap([(0, 1), (2, 3), (3, 4), (4, 0)])
        rebuilt = apply_delta(prev, snapshot_delta(prev, cur))
        assert rebuilt.edge_set() == cur.edge_set()

    def test_redundant_changes_are_noops(self):
        prev = _snap([(0, 1)])
        delta = snapshot_delta(prev, _snap([(0, 1), (1, 2)]))
        # Re-adding a present edge / removing an absent one changes nothing.
        twice = apply_delta(apply_delta(prev, delta), delta)
        assert twice.edge_set() == {(0, 1), (1, 2)}


class TestSplitMergeRoundtrip:
    def _random_transition(self, rng, n=40, edges=150):
        prev = GraphSnapshot.from_edge_arrays(
            n, rng.integers(0, n, edges), rng.integers(0, n, edges)
        )
        cur = GraphSnapshot.from_edge_arrays(
            n, rng.integers(0, n, edges), rng.integers(0, n, edges)
        )
        return prev, cur

    def test_split_is_disjoint_by_destination_owner(self, rng):
        prev, cur = self._random_transition(rng)
        delta = snapshot_delta(prev, cur)
        assignment = rng.integers(0, 3, prev.num_vertices)
        parts = split_delta(delta, assignment)
        assert sum(p.num_changes for p in parts) == delta.num_changes
        for part, piece in enumerate(parts):
            assert np.all(assignment[piece.added_dst] == part)
            assert np.all(assignment[piece.removed_dst] == part)

    def test_merge_recovers_exact_snapshot_in_any_order(self, rng):
        prev, cur = self._random_transition(rng)
        delta = snapshot_delta(prev, cur)
        assignment = rng.integers(0, 4, prev.num_vertices)
        parts = split_delta(delta, assignment)
        for order in (parts, parts[::-1]):
            merged = merge_deltas(list(order))
            rebuilt = apply_delta(prev, merged)
            assert rebuilt.edge_set() == cur.edge_set()
            np.testing.assert_array_equal(
                rebuilt.edge_arrays(), apply_delta(prev, delta).edge_arrays()
            )

    def test_merge_of_nothing_is_the_empty_delta(self):
        merged = merge_deltas([])
        assert merged.num_changes == 0
        assert merged.added_src.dtype == np.int64

    def test_split_covers_trailing_empty_parts(self):
        delta = snapshot_delta(_snap([(0, 1)]), _snap([(0, 1), (1, 2)]))
        parts = split_delta(delta, np.array([0, 0, 0, 0, 0]))
        assert len(parts) == 1
        assert parts[0].num_added == 1


class TestCommonCore:
    def test_core_is_intersection(self):
        prev = _snap([(0, 1), (1, 2), (2, 3)])
        cur = _snap([(0, 1), (2, 3), (3, 4)])
        core = common_core(prev, cur)
        assert core.edge_set() == {(0, 1), (2, 3)}

    def test_both_reachable_by_additions(self):
        prev = _snap([(0, 1), (1, 2)])
        cur = _snap([(0, 1), (2, 3)])
        core = common_core(prev, cur)
        assert core.edge_set() <= prev.edge_set()
        assert core.edge_set() <= cur.edge_set()

    def test_core_of_identical_snapshots(self):
        snapshot = _snap([(0, 1), (1, 2)])
        core = common_core(snapshot, snapshot)
        assert core.edge_set() == snapshot.edge_set()


class TestAdditionOnlySchedule:
    def test_schedule_counts(self):
        graph = DynamicGraph(
            [_snap([(0, 1), (1, 2)]), _snap([(0, 1), (2, 3)])]
        )
        steps = addition_only_schedule(graph)
        assert len(steps) == 1
        step = steps[0]
        assert step.timestamp == 1
        assert step.core_edges == 1
        assert step.edges_to_add == 1
        assert step.direct_deletions == 1
        assert step.avoided_deletions == 1

    def test_schedule_eliminates_all_deletions(self):
        graph = generate_dynamic_graph(100, 400, 5, dissimilarity=0.2, seed=2)
        for step in addition_only_schedule(graph):
            # Reconstructing from the core requires only additions.
            assert step.edges_to_add >= 0
            assert step.core_edges >= 0
            # Core + additions rebuilds the new snapshot exactly.
            assert step.core_edges + step.edges_to_add == graph[
                step.timestamp
            ].num_edges

    def test_single_snapshot_graph(self):
        graph = DynamicGraph([_snap([(0, 1)])])
        assert addition_only_schedule(graph) == []
