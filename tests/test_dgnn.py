"""Unit tests for repro.models.dgnn (the combined model, Eq. 2)."""

import numpy as np
import pytest

from repro.graphs.dynamic import DynamicGraph
from repro.graphs.generators import generate_dynamic_graph, random_features
from repro.graphs.snapshot import GraphSnapshot
from repro.models.dgnn import DGNNModel
from repro.models.gcn import GCNModel
from repro.models.rnn import GRUCell, LSTMCell


class TestConstruction:
    def test_create_lstm(self):
        model = DGNNModel.create(6, [8, 4], 5, seed=0)
        assert model.num_gnn_layers == 2
        assert isinstance(model.rnn, LSTMCell)
        assert model.rnn.in_dim == 4

    def test_create_gru(self):
        model = DGNNModel.create(6, [8], 5, rnn_kind="gru", seed=0)
        assert isinstance(model.rnn, GRUCell)

    def test_rejects_unknown_rnn(self):
        with pytest.raises(ValueError):
            DGNNModel.create(6, [8], 5, rnn_kind="transformer")

    def test_rejects_dim_mismatch(self):
        gnn = GCNModel.create([6, 8], seed=0)
        rnn = LSTMCell.create(5, 4, seed=0)
        with pytest.raises(ValueError):
            DGNNModel(gnn, rnn)


class TestRun:
    def test_output_shapes(self, small_graph):
        model = DGNNModel.create(6, [8, 4], 5, seed=1)
        outputs = model.run(small_graph)
        assert outputs.num_snapshots == 5
        assert outputs.embeddings[0].shape == (40, 4)
        assert outputs.hidden[0].shape == (40, 5)
        assert outputs.final_hidden() is outputs.hidden[-1]

    def test_hidden_state_carries_over(self, small_graph):
        # Running the same snapshot twice gives different hidden states,
        # because h^t depends on h^{t-1} (Eq. 2).
        model = DGNNModel.create(6, [8], 5, seed=2)
        same = DynamicGraph([small_graph[0], small_graph[0]])
        outputs = model.run(same)
        assert not np.allclose(outputs.hidden[0], outputs.hidden[1])

    def test_explicit_features_override(self, small_graph, rng):
        model = DGNNModel.create(6, [8], 5, seed=3)
        features = [
            random_features(40, 6, rng=rng) for _ in range(5)
        ]
        outputs = model.run(small_graph, features=features)
        baseline = model.run(small_graph)
        assert not np.allclose(outputs.embeddings[0], baseline.embeddings[0])

    def test_requires_features_somewhere(self):
        graph = DynamicGraph([GraphSnapshot.from_edges(4, [(0, 1)], feature_dim=3)])
        model = DGNNModel.create(3, [4], 4, seed=4)
        with pytest.raises(ValueError):
            model.run(graph)

    def test_rejects_varying_vertex_counts(self):
        graph = DynamicGraph(
            [
                GraphSnapshot.from_edges(4, [(0, 1)], feature_dim=3),
                GraphSnapshot.from_edges(5, [(0, 1)], feature_dim=3),
            ]
        )
        model = DGNNModel.create(3, [4], 4, seed=5)
        with pytest.raises(ValueError):
            model.run(graph)

    def test_initial_state_respected(self, small_graph):
        model = DGNNModel.create(6, [8], 5, seed=6)
        state = model.rnn.initial_state(40)
        state.hidden += 0.5
        state.cell += 0.1
        warm = model.run(small_graph, initial_state=state)
        cold = model.run(small_graph)
        assert not np.allclose(warm.hidden[0], cold.hidden[0])

    def test_gru_variant_runs(self, small_graph):
        model = DGNNModel.create(6, [8, 4], 5, rnn_kind="gru", seed=7)
        outputs = model.run(small_graph)
        assert outputs.hidden[0].shape == (40, 5)

    def test_deterministic(self, small_graph):
        a = DGNNModel.create(6, [8], 5, seed=8).run(small_graph)
        b = DGNNModel.create(6, [8], 5, seed=8).run(small_graph)
        np.testing.assert_array_equal(a.hidden[-1], b.hidden[-1])


class TestEmbeddingSemantics:
    def test_embeddings_reflect_structure_change(self):
        graph = generate_dynamic_graph(
            30, 120, 3, dissimilarity=0.4, feature_dim=4, seed=9,
            with_features=True,
        )
        model = DGNNModel.create(4, [6], 5, seed=10)
        outputs = model.run(graph)
        # With 40% of rows changing, consecutive embeddings must differ.
        assert not np.allclose(outputs.embeddings[0], outputs.embeddings[1])

    def test_unchanged_graph_keeps_embeddings(self, small_graph):
        model = DGNNModel.create(6, [8], 5, seed=11)
        same = DynamicGraph([small_graph[0], small_graph[0]])
        outputs = model.run(same)
        np.testing.assert_allclose(
            outputs.embeddings[0], outputs.embeddings[1], atol=1e-12
        )
