"""Tests for the PE dispatcher and the scheduler decision trace."""

import numpy as np
import pytest

from repro.accel.config import TileConfig
from repro.accel.dispatch import PEDispatcher
from repro.cli import main
from repro.core.plan import DGNNSpec
from repro.core.scheduler import DiTileScheduler, SchedulerOptions


class TestPEDispatcher:
    @pytest.fixture
    def dispatcher(self):
        return PEDispatcher(TileConfig(), grain_macs=1000.0)

    def test_round_robin_covers_all_work(self, dispatcher, rng):
        workloads = rng.pareto(1.5, size=100) * 500 + 10
        result = dispatcher.round_robin(workloads)
        assert result.pe_loads.sum() == pytest.approx(workloads.sum())
        assert len(result.pe_loads) == 16

    def test_greedy_beats_round_robin(self, dispatcher, rng):
        workloads = rng.pareto(1.2, size=60) * 800 + 10
        greedy = dispatcher.greedy(workloads)
        naive = dispatcher.round_robin(workloads)
        assert greedy.makespan_macs <= naive.makespan_macs + 1e-9
        assert greedy.utilization >= naive.utilization - 1e-9

    def test_grain_bounds_hub_imbalance(self, rng):
        # One huge item: without splitting, one PE owns it all.
        workloads = [100_000.0] + [10.0] * 15
        coarse = PEDispatcher(TileConfig(), grain_macs=1e9).greedy(workloads)
        fine = PEDispatcher(TileConfig(), grain_macs=1000.0).greedy(workloads)
        assert fine.stretch < coarse.stretch

    def test_empty_and_zero_work(self, dispatcher):
        result = dispatcher.dispatch([])
        assert result.makespan_macs == 0.0
        assert result.utilization == 1.0
        result = dispatcher.dispatch([0.0, 0.0])
        assert result.makespan_macs == 0.0

    def test_unknown_policy(self, dispatcher):
        with pytest.raises(ValueError):
            dispatcher.dispatch([1.0], policy="random")

    def test_rejects_bad_grain(self):
        with pytest.raises(ValueError):
            PEDispatcher(TileConfig(), grain_macs=0.0)

    def test_stretch_at_least_one(self, dispatcher, rng):
        workloads = rng.uniform(1, 100, size=50)
        for policy in ("greedy", "round_robin"):
            result = dispatcher.dispatch(workloads, policy)
            assert result.stretch >= 1.0 - 1e-9


class TestSchedulerExplain:
    def test_trace_contents(self, medium_graph, medium_spec):
        scheduler = DiTileScheduler(16, 4 * 2**20)
        trace = scheduler.explain(medium_graph, medium_spec)
        assert "[tiling]" in trace
        assert "[parallelism]" in trace
        assert "<== chosen" in trace
        assert "[balance]" in trace
        assert "[redundancy]" in trace

    def test_trace_notes_disabled_search(self, medium_graph, medium_spec):
        scheduler = DiTileScheduler(
            16, 4 * 2**20, SchedulerOptions(enable_parallelism=False)
        )
        trace = scheduler.explain(medium_graph, medium_spec)
        assert "disabled" in trace
        assert "<== chosen" not in trace

    def test_cli_plan_explain(self, capsys):
        assert main(
            ["plan", "TW", "--scale", "0.02", "--snapshots", "3", "--explain"]
        ) == 0
        out = capsys.readouterr().out
        assert "[parallelism]" in out
