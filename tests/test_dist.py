"""Tests for repro.dist: sharded multi-process serving.

The load-bearing assertion is parity: per-window results of the sharded
service are bit-identical to the single-process service and the offline
reference for *any* shard count, including under deterministic worker
crashes.  Around it: cut-edge accounting against single-process edge
totals on every dataset fixture, router/ingestor decision parity, the
shared-memory segment protocol, and restart/teardown hygiene.
"""

import json
import multiprocessing
import sys
from dataclasses import replace
from pathlib import Path

import numpy as np
import pytest

from repro.core.plan import DGNNSpec
from repro.dist import (
    EventRouter,
    SegmentSpec,
    ShardedConfig,
    ShardedService,
    attach_segment,
    segment_name,
    unlink_segment,
    write_segment,
)
from repro.graphs.continuous import ContinuousDynamicGraph, EdgeEvent
from repro.graphs.datasets import TABLE1_DATASETS, load_dataset
from repro.graphs.partition import hash_vertex_partition
from repro.resilience.chaos import ChaosSchedule, run_chaos
from repro.serving import (
    ServiceConfig,
    StreamingService,
    serve_offline,
    synthetic_event_stream,
)
from repro.serving.ingest import ShardedWindowBuilder, WindowedIngestor
from repro.serving.streams import stream_from_dataset

SPEC = DGNNSpec(gcn_dims=(8, 8), rnn_hidden_dim=8)


@pytest.fixture(scope="module")
def stream():
    return synthetic_event_stream(num_vertices=64, num_events=1500, seed=3)


@pytest.fixture(scope="module")
def service_config(stream):
    first, last = stream.time_span
    return ServiceConfig(window=(last - first) / 10, workers=2)


@pytest.fixture(scope="module")
def offline(stream, service_config):
    return serve_offline(stream, SPEC, config=service_config)


def _assert_no_leaks(service):
    assert not multiprocessing.active_children()
    if sys.platform.startswith("linux") and Path("/dev/shm").is_dir():
        leaked = list(Path("/dev/shm").glob(f"{service._session}*"))
        assert leaked == [], f"leaked shared-memory segments: {leaked}"


class TestParitySweep:
    @pytest.mark.parametrize("shards", [1, 2, 4, 7])
    def test_bit_identical_to_offline(self, stream, service_config, offline, shards):
        service = ShardedService(
            config=ShardedConfig(shards=shards, service=service_config)
        )
        report = service.serve(stream, SPEC)
        assert report.results == offline
        assert report.stats.shards == shards
        assert report.stats.restarts == 0
        _assert_no_leaks(service)

    def test_matches_single_process_service(self, stream, service_config, offline):
        report = StreamingService(config=service_config).serve(stream, SPEC)
        assert report.results == offline

    def test_partition_seed_changes_routing_not_results(
        self, stream, service_config, offline
    ):
        reports = [
            ShardedService(
                config=ShardedConfig(
                    shards=3, service=service_config, partition_seed=seed
                )
            ).serve(stream, SPEC)
            for seed in (0, 99)
        ]
        for report in reports:
            assert report.results == offline
        per_shard = [
            tuple(s.events for s in report.stats.shard_stats) for report in reports
        ]
        assert per_shard[0] != per_shard[1]  # the partition really moved

    @pytest.mark.parametrize("depth", [1, 2, 4])
    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_pipeline_depth_parity(
        self, stream, service_config, offline, depth, shards
    ):
        """The tentpole sweep: results are bit-identical to the offline
        reference for every pipeline depth x shard count combination."""
        service = ShardedService(
            config=ShardedConfig(
                shards=shards,
                service=replace(service_config, pipeline_depth=depth),
            )
        )
        report = service.serve(stream, SPEC)
        assert report.results == offline
        assert report.stats.pipeline_depth == depth
        assert 1 <= report.stats.max_inflight_batches <= depth
        _assert_no_leaks(service)

    def test_stats_counters_match_single_process(self, stream, service_config):
        single = StreamingService(config=service_config).serve(stream, SPEC).stats
        sharded = (
            ShardedService(config=ShardedConfig(shards=2, service=service_config))
            .serve(stream, SPEC)
            .stats
        )
        for counter in ("windows", "events", "late_events", "plan_hits",
                        "plan_misses", "plan_replans"):
            assert getattr(sharded, counter) == getattr(single, counter), counter


class TestEdgeAccounting:
    def test_synthetic_invariant_every_window(self, stream, service_config):
        report = ShardedService(
            config=ShardedConfig(shards=4, service=service_config)
        ).serve(stream, SPEC)
        accounts = report.stats.edge_accounts
        assert len(accounts) == report.num_windows
        for account in accounts:
            assert len(account.shard_edges) == 4
            assert account.total_shard_edges == account.global_edges
            for cut, owned in zip(account.cut_edges, account.shard_edges):
                assert 0 <= cut <= owned

    # Scales chosen so every Table 1 dataset shrinks to a few hundred
    # vertices (the big ones get proportionally smaller factors).
    SCALES = {"PM": 0.05, "RD": 0.005, "MB": 0.0012, "TW": 0.02,
              "WD": 0.02, "FK": 0.0002}

    @pytest.mark.parametrize("abbrev", sorted(SCALES))
    def test_dataset_totals_match_single_process(self, abbrev):
        scale = self.SCALES[abbrev]
        graph = load_dataset(abbrev, scale=scale, snapshots=3, seed=7)
        replay = stream_from_dataset(abbrev, scale=scale, snapshots=3, seed=7)
        config = ServiceConfig(window=1.0, origin=0.0, workers=0)
        report = ShardedService(
            config=ShardedConfig(shards=3, service=config)
        ).serve(replay, DGNNSpec.classic(graph.feature_dim, hidden_dim=16))
        accounts = report.stats.edge_accounts
        # Replay events land at integer times 1..T-1, one transition per
        # snapshot boundary, so window k reproduces snapshot k+1.
        assert len(accounts) == graph.num_snapshots - 1
        for account, snapshot in zip(accounts, graph.snapshots[1:]):
            # Shard-owned edges sum exactly to the single-process
            # (= offline dataset) edge total, window by window.
            assert account.total_shard_edges == snapshot.num_edges
            assert account.global_edges == snapshot.num_edges

    def test_single_shard_has_no_cut_edges(self, stream, service_config):
        report = ShardedService(
            config=ShardedConfig(shards=1, service=service_config)
        ).serve(stream, SPEC)
        assert report.stats.cut_edges_final == 0
        for account in report.stats.edge_accounts:
            assert account.total_cut_edges == 0


class TestMoreShardsThanVertices:
    def test_parity_with_empty_shards(self):
        stream = synthetic_event_stream(num_vertices=5, num_events=120, seed=1)
        first, last = stream.time_span
        config = ServiceConfig(window=(last - first) / 4, workers=0)
        offline = serve_offline(stream, SPEC, config=config)
        report = ShardedService(
            config=ShardedConfig(shards=8, service=config)
        ).serve(stream, SPEC)
        assert report.results == offline
        # At most 5 shards can own a vertex; the rest served empty deltas.
        owning = sum(1 for s in report.stats.shard_stats if s.events)
        assert owning <= 5


class TestRestart:
    def test_crash_restart_preserves_parity(self, stream, service_config, offline):
        service = ShardedService(
            config=ShardedConfig(
                shards=3,
                service=service_config,
                crash_windows=((1, 3), (0, 6)),
                max_restarts=4,
            )
        )
        report = service.serve(stream, SPEC)
        assert report.results == offline
        assert report.stats.restarts == 2
        generations = sorted(s.generation for s in report.stats.shard_stats)
        assert generations == [0, 1, 1]
        _assert_no_leaks(service)

    def test_crash_mid_prefetch_preserves_parity(
        self, stream, service_config, offline
    ):
        """Worker death while the pipeline holds batches in flight (and
        the shards are prefetching ahead of the merge) must be invisible:
        results byte-identical to the serialized path, nothing leaked."""
        service = ShardedService(
            config=ShardedConfig(
                shards=3,
                service=replace(
                    service_config, pipeline_depth=4, max_batch_windows=2
                ),
                crash_windows=((1, 3), (0, 6)),
                max_restarts=4,
            )
        )
        report = service.serve(stream, SPEC)
        assert report.results == offline
        assert report.stats.restarts == 2
        _assert_no_leaks(service)

    def test_restart_budget_exhaustion_raises(self, stream, service_config):
        service = ShardedService(
            config=ShardedConfig(
                shards=2,
                service=service_config,
                crash_windows=((0, 1),),
                max_restarts=0,
            )
        )
        with pytest.raises(RuntimeError, match="restart"):
            service.serve(stream, SPEC)
        _assert_no_leaks(service)


class TestChaosSharded:
    def test_chaos_report_byte_identical_across_shard_counts(self):
        stream = synthetic_event_stream(num_vertices=48, num_events=600, seed=5)
        first, last = stream.time_span
        config = None  # run_chaos supplies the resilient default
        schedule = ChaosSchedule(
            seed=11, crash_rate=0.2, latency_rate=0.1,
            latency_s=0.0002, poison_rate=0.05,
        )
        reports = {}
        for shards in (0, 1, 2):
            _, chaos = run_chaos(stream, SPEC, schedule, config=config,
                                 shards=shards)
            reports[shards] = chaos.to_json()
        assert reports[0] == reports[1] == reports[2]
        json.loads(reports[0])  # stays well-formed

    def test_chaos_report_byte_identical_across_pipeline_depths(self):
        """The chaos harness under the overlapped pipeline: fault
        injection keyed by (window, attempt) cannot see dispatch timing,
        so the deterministic report byte-compares against the serialized
        (depth-1) path, single-process and sharded alike."""
        from repro.resilience import BreakerConfig, RetryPolicy

        stream = synthetic_event_stream(num_vertices=48, num_events=600, seed=5)
        schedule = ChaosSchedule(
            seed=11, crash_rate=0.2, latency_rate=0.1,
            latency_s=0.0002, poison_rate=0.05,
        )
        reports = {}
        for depth in (1, 2, 4):
            config = ServiceConfig(
                pipeline_depth=depth,
                retry=RetryPolicy(max_attempts=4, backoff_s=0.0005),
                breaker=BreakerConfig(),
                quarantine=True,
            )
            for shards in (0, 2):
                _, chaos = run_chaos(stream, SPEC, schedule, config=config,
                                     shards=shards)
                reports[(depth, shards)] = chaos.to_json()
        reference = reports[(1, 0)]
        assert all(r == reference for r in reports.values())


class TestEventRouter:
    def _ingestor_reference(self, events, num_vertices, window, **kwargs):
        ingestor = WindowedIngestor(num_vertices, window, **kwargs)
        return list(ingestor.windows(events))

    def test_matches_ingestor_counters(self, stream, service_config):
        partition = hash_vertex_partition(stream.num_vertices, 4, seed=0)
        router = EventRouter(
            partition, num_vertices=stream.num_vertices,
            window=service_config.window,
        )
        routing = router.route(stream.events)
        windows = self._ingestor_reference(
            stream.events, stream.num_vertices, service_config.window
        )
        assert routing.num_windows == len(windows)
        assert routing.total_events == len(stream.events)
        assert sum(routing.shard_events) + routing.late_events == len(stream.events)
        assert sum(w.num_events for w in windows) == sum(routing.shard_events)

    def test_routes_by_destination_vertex(self):
        partition = hash_vertex_partition(16, 3, seed=2)
        events = [EdgeEvent(float(t), t % 16, (t * 7) % 16) for t in range(40)]
        routing = EventRouter(partition, num_vertices=16, window=10.0).route(events)
        for shard, routed in enumerate(routing.routed):
            for index, event in routed:
                assert partition.assignment[event.dst] == shard
                assert index >= 0

    def test_late_events_counted_not_routed(self):
        partition = hash_vertex_partition(8, 2, seed=0)
        events = [
            EdgeEvent(0.5, 0, 1),
            EdgeEvent(5.5, 1, 2),   # opens window 5
            EdgeEvent(0.7, 2, 3),   # late: window 0 already passed
        ]
        routing = EventRouter(partition, num_vertices=8, window=1.0).route(events)
        assert routing.late_events == 1
        assert sum(routing.shard_events) == 2

    def test_strict_time_order_raises_on_late(self):
        partition = hash_vertex_partition(8, 2, seed=0)
        events = [
            EdgeEvent(0.5, 0, 1),
            EdgeEvent(5.5, 1, 2),   # opens window 5
            EdgeEvent(0.7, 2, 3),   # late: window 0 already closed
        ]
        router = EventRouter(
            partition, num_vertices=8, window=1.0, strict_time_order=True
        )
        with pytest.raises(ValueError, match="late event"):
            router.route(events)

    def test_quarantine_dead_letters_malformed(self):
        partition = hash_vertex_partition(8, 2, seed=0)
        events = [EdgeEvent(0.0, 0, 1), EdgeEvent(0.1, 0, 99)]  # dst outside
        router = EventRouter(
            partition, num_vertices=8, window=1.0, quarantine=True
        )
        routing = router.route(events)
        assert routing.quarantined_events == 1
        assert routing.rejected[0].position == 1
        assert sum(routing.shard_events) == 1

    def test_malformed_raises_without_quarantine(self):
        partition = hash_vertex_partition(8, 2, seed=0)
        router = EventRouter(partition, num_vertices=8, window=1.0)
        with pytest.raises(ValueError, match="malformed"):
            router.route([EdgeEvent(0.0, 0, 99)])

    def test_empty_stream_serves_one_window(self):
        partition = hash_vertex_partition(8, 2, seed=0)
        routing = EventRouter(partition, num_vertices=8, window=1.0).route([])
        assert routing.num_windows == 1
        assert routing.origin == 0.0
        assert routing.shard_events == [0, 0]

    def test_rejects_undersized_partition(self):
        partition = hash_vertex_partition(4, 2, seed=0)
        with pytest.raises(ValueError, match="cover"):
            EventRouter(partition, num_vertices=8, window=1.0)


class TestShardedWindowBuilder:
    def test_pads_gaps_and_trailing_windows(self):
        builder = ShardedWindowBuilder(num_vertices=8, window=1.0)
        routed = [(0, EdgeEvent(0.5, 0, 1)), (3, EdgeEvent(3.5, 1, 2))]
        windows = list(builder.build(routed, end_window=6))
        assert [w.index for w in windows] == [0, 1, 2, 3, 4, 5]
        assert [w.num_events for w in windows] == [1, 0, 0, 1, 0, 0]
        assert windows[1].snapshot.num_edges == windows[0].snapshot.num_edges
        assert windows[3].snapshot.num_edges == 2
        assert windows[0].close_time == 1.0
        assert windows[5].close_time == 6.0

    def test_out_of_order_index_raises(self):
        builder = ShardedWindowBuilder(num_vertices=8, window=1.0)
        routed = [(2, EdgeEvent(2.5, 0, 1)), (1, EdgeEvent(1.5, 1, 2))]
        with pytest.raises(ValueError):
            list(builder.build(routed, end_window=4))

    def test_start_window_resumes_mid_stream(self):
        builder = ShardedWindowBuilder(num_vertices=8, window=1.0, start_window=2)
        windows = list(builder.build([(2, EdgeEvent(2.5, 0, 1))], end_window=4))
        assert [w.index for w in windows] == [2, 3]


class TestSharedMemory:
    def test_write_attach_roundtrip(self):
        name = segment_name("rdtest0", 0, 0, 0)
        arrays = [
            ("a", np.arange(5, dtype=np.int64)),
            ("b", np.array([], dtype=np.int64)),
            ("c", np.array([7, -3], dtype=np.int64)),
        ]
        spec = write_segment(name, arrays)
        assert spec.fields == (("a", 5), ("b", 0), ("c", 2))
        assert spec.nbytes == 7 * 8
        with attach_segment(spec) as views:
            np.testing.assert_array_equal(views["a"], np.arange(5))
            assert views["b"].size == 0
            np.testing.assert_array_equal(views["c"], [7, -3])
            copied = views["c"] + 0  # derived arrays may outlive the block
        np.testing.assert_array_equal(copied, [7, -3])
        assert unlink_segment(name) is True
        assert unlink_segment(name) is False  # second unlink is a no-op

    def test_empty_segment_roundtrip(self):
        name = segment_name("rdtest0", 1, 0, 0)
        spec = write_segment(name, [("x", np.array([], dtype=np.int64))])
        assert spec.nbytes == 0
        with attach_segment(spec) as views:
            assert views["x"].size == 0
        assert unlink_segment(name) is True

    def test_segment_names_are_unique_per_coordinate(self):
        names = {
            segment_name("s", shard, gen, window)
            for shard in range(3) for gen in range(3) for window in range(3)
        }
        assert len(names) == 27


class TestShardedConfig:
    def test_rejects_nonpositive_shards(self):
        with pytest.raises(ValueError, match="shards"):
            ShardedConfig(shards=0)

    def test_rejects_nonpositive_heartbeat(self):
        with pytest.raises(ValueError, match="heartbeat"):
            ShardedConfig(heartbeat_s=0.0)

    def test_rejects_negative_restart_budget(self):
        with pytest.raises(ValueError, match="max_restarts"):
            ShardedConfig(max_restarts=-1)

    def test_rejects_load_shedding(self):
        with pytest.raises(ValueError, match="load_shedding"):
            ShardedConfig(service=ServiceConfig(load_shedding=True))


class TestDatasetFixtureSweep:
    def test_all_table1_abbrevs_have_a_scale(self):
        assert sorted(TestEdgeAccounting.SCALES) == sorted(
            p.abbrev for p in TABLE1_DATASETS
        )
