"""Unit tests for the DiTile-DGNN accelerator model."""

import pytest

from repro.accel.config import HardwareConfig
from repro.baselines import (
    DGNNBoosterAccelerator,
    MEGAAccelerator,
    RACEAccelerator,
    ReaDyAccelerator,
)
from repro.core.scheduler import SchedulerOptions
from repro.ditile import DiTileAccelerator


class TestConfiguration:
    def test_defaults(self):
        model = DiTileAccelerator()
        assert model.hardware.noc.topology == "ditile"
        assert model.hardware.noc.relink_enabled
        assert model.algorithm == "ditile"

    def test_nora_falls_back_to_mesh(self):
        model = DiTileAccelerator(reconfigurable_noc=False)
        assert model.hardware.noc.topology == "mesh"

    def test_scheduler_uses_hardware_budget(self):
        hw = HardwareConfig(grid_rows=2, grid_cols=4)
        model = DiTileAccelerator(hw)
        assert model.scheduler.total_tiles == 8

    def test_batched_gathers_require_tiling_and_balance(self):
        full = DiTileAccelerator()
        degraded = DiTileAccelerator(
            options=SchedulerOptions(enable_tiling=False)
        )
        assert full.hardware.dram.random_efficiency > (
            degraded.hardware.dram.random_efficiency
        )


class TestPlanning:
    def test_plan_is_cached(self, medium_graph, medium_spec):
        model = DiTileAccelerator()
        assert model.plan(medium_graph, medium_spec) is model.plan(
            medium_graph, medium_spec
        )

    def test_placement_mirrors_plan(self, medium_graph, medium_spec):
        model = DiTileAccelerator()
        plan = model.plan(medium_graph, medium_spec)
        placement = model.placement(medium_graph, medium_spec)
        assert placement.snapshot_groups == plan.factors.snapshot_groups
        assert placement.vertex_groups == plan.factors.vertex_groups
        assert placement.reuse_capable
        assert placement.reconfigurable

    def test_tiling_alpha_from_plan(self, medium_graph, medium_spec):
        model = DiTileAccelerator()
        assert model.tiling_alpha(medium_graph, medium_spec) == model.plan(
            medium_graph, medium_spec
        ).tiling.alpha

    def test_no_reuse_option_runs_full_recompute(self, medium_graph, medium_spec):
        with_reuse = DiTileAccelerator().build_costs(medium_graph, medium_spec)
        without = DiTileAccelerator(
            options=SchedulerOptions(enable_reuse=False)
        ).build_costs(medium_graph, medium_spec)
        assert without.total_macs > with_reuse.total_macs
        assert without.algorithm == "ditile"  # reported under its own name


class TestHeadlineResults:
    """The paper's central claims, at reduced scale."""

    def test_beats_every_baseline_on_time_and_energy(
        self, medium_graph, medium_spec
    ):
        ditile = DiTileAccelerator().simulate(medium_graph, medium_spec)
        for cls in (
            ReaDyAccelerator,
            DGNNBoosterAccelerator,
            RACEAccelerator,
            MEGAAccelerator,
        ):
            baseline = cls().simulate(medium_graph, medium_spec)
            assert baseline.execution_cycles > ditile.execution_cycles, cls.name
            assert baseline.energy_joules > ditile.energy_joules, cls.name

    def test_fewest_operations(self, medium_graph, medium_spec):
        ditile = DiTileAccelerator().build_costs(medium_graph, medium_spec)
        for cls in (ReaDyAccelerator, RACEAccelerator, MEGAAccelerator):
            baseline = cls().build_costs(medium_graph, medium_spec)
            assert baseline.total_macs > ditile.total_macs, cls.name

    def test_least_dram_traffic(self, medium_graph, medium_spec):
        ditile = DiTileAccelerator().build_costs(medium_graph, medium_spec)
        for cls in (ReaDyAccelerator, RACEAccelerator, MEGAAccelerator):
            baseline = cls().build_costs(medium_graph, medium_spec)
            assert baseline.dram_bytes > ditile.dram_bytes, cls.name

    def test_control_energy_fraction_below_7pct(self, medium_graph, medium_spec):
        result = DiTileAccelerator().simulate(medium_graph, medium_spec)
        assert result.energy.control_fraction() < 0.07
