"""Unit tests for repro.accel.dram."""

import pytest

from repro.accel.config import DRAMConfig
from repro.accel.dram import DRAMModel, DRAMTraffic


@pytest.fixture
def model():
    return DRAMModel(DRAMConfig(
        bandwidth_bytes_per_cycle=64.0,
        base_latency_cycles=100,
        streaming_efficiency=0.8,
        random_efficiency=0.4,
    ))


class TestDRAMTraffic:
    def test_total(self):
        traffic = DRAMTraffic(10, 20, 30, 40)
        assert traffic.total_bytes == 100

    def test_add(self):
        a = DRAMTraffic(streaming_read=10)
        a.add(DRAMTraffic(random_write=5))
        assert a.total_bytes == 15
        assert a.random_write == 5


class TestTransferCycles:
    def test_zero_traffic_is_free(self, model):
        assert model.transfer_cycles(DRAMTraffic()) == 0.0

    def test_streaming_by_hand(self, model):
        # 5120 bytes at 64 B/cyc * 0.8 = 100 cycles + 100 latency.
        traffic = DRAMTraffic(streaming_read=5120)
        assert model.transfer_cycles(traffic) == pytest.approx(200.0)

    def test_random_is_slower_than_streaming(self, model):
        streaming = model.transfer_cycles(DRAMTraffic(streaming_read=65536))
        random = model.transfer_cycles(DRAMTraffic(random_read=65536))
        assert random > streaming

    def test_mixed_traffic_adds_components(self, model):
        mixed = DRAMTraffic(streaming_read=5120, random_read=2560)
        expected = 100 + 5120 / (64 * 0.8) + 2560 / (64 * 0.4)
        assert model.transfer_cycles(mixed) == pytest.approx(expected)

    def test_effective_bandwidth_below_peak(self, model):
        traffic = DRAMTraffic(streaming_read=1 << 20)
        bandwidth = model.effective_bandwidth(traffic)
        assert 0 < bandwidth < 64.0

    def test_effective_bandwidth_zero_traffic(self, model):
        assert model.effective_bandwidth(DRAMTraffic()) == 0.0
