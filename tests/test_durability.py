"""Tests for repro.durability: WAL, checkpoints, crash-consistent recovery.

The load-bearing assertion mirrors the durability invariant: a run
crashed at *any* window boundary and resumed produces per-window results
byte-identical to the uninterrupted run, for any shard count and
pipeline depth.  Around it: the WAL edge cases (torn tail, mid-log
corruption, empty segments, rotation), the run lock's stale-owner
protocol, checkpoint atomicity/retention/fallback, the SIGKILL chaos
fault class with deterministic restart backoff, the ``repro chaos
recover`` harness, and the SLO restart-budget integration.
"""

import json
import multiprocessing
import os
import signal
from dataclasses import replace
from types import SimpleNamespace

import pytest

from repro.cli import _window_results_json
from repro.core.plan import DGNNSpec
from repro.dist import ShardedConfig, ShardedService
from repro.durability import (
    Checkpoint,
    CheckpointError,
    CheckpointStore,
    DurabilityConfig,
    RunLock,
    SimulatedCrash,
    WalCorruptionError,
    WalLockedError,
    WriteAheadLog,
    run_recover_sweep,
)
from repro.durability.wal import LockInfo
from repro.graphs.continuous import EdgeEvent
from repro.obs.slo import SLOMonitor
from repro.resilience.chaos import ChaosSchedule, ShardKillSchedule, run_chaos
from repro.resilience.policies import RetryPolicy
from repro.serving import ServiceConfig, StreamingService, synthetic_event_stream

SPEC = DGNNSpec(gcn_dims=(8, 8), rnn_hidden_dim=8)
WINDOW = 40.0  # 15 windows over the 600-event synthetic stream


@pytest.fixture(scope="module")
def stream():
    return synthetic_event_stream(
        num_vertices=64, num_events=600, seed=7, remove_fraction=0.25
    )


@pytest.fixture(scope="module")
def config():
    return ServiceConfig(window=WINDOW, workers=2)


@pytest.fixture(scope="module")
def reference_json(stream, config):
    """Per-window results of the uninterrupted, non-durable run."""
    report = StreamingService(config=config).serve(stream, SPEC)
    return _window_results_json(report)


def _events(n, start=0.0, step=1.0):
    return [
        EdgeEvent(start + i * step, i % 7, (i + 3) % 7, "add") for i in range(n)
    ]


def _serve(stream, config, shards=0):
    if shards >= 1:
        sharded = ShardedConfig(shards=shards, service=config)
        return ShardedService(config=sharded).serve(stream, SPEC)
    return StreamingService(config=config).serve(stream, SPEC)


# ---------------------------------------------------------------------------
# WAL
# ---------------------------------------------------------------------------
class TestWriteAheadLog:
    def test_roundtrip(self, tmp_path):
        wal, records = WriteAheadLog.open(tmp_path, fsync=False)
        assert records == []
        events = _events(5)
        for pos, event in enumerate(events):
            wal.append(pos, event)
        wal.sync()
        wal.close()
        _, replayed = WriteAheadLog.open(tmp_path, fsync=False)
        assert [p for p, _ in replayed] == [0, 1, 2, 3, 4]
        assert [e for _, e in replayed] == events

    def test_rotation_seals_segments(self, tmp_path):
        wal, _ = WriteAheadLog.open(tmp_path, segment_bytes=64, fsync=False)
        for pos, event in enumerate(_events(20)):
            wal.append(pos, event)
        wal.close()
        sealed = sorted(p.name for p in tmp_path.glob("wal-*.seg"))
        assert len(sealed) >= 2
        assert sealed[0] == "wal-000000.seg"
        _, replayed = WriteAheadLog.open(tmp_path, fsync=False)
        assert [p for p, _ in replayed] == list(range(20))

    def test_torn_final_record_is_truncated(self, tmp_path):
        wal, _ = WriteAheadLog.open(tmp_path, fsync=False)
        for pos, event in enumerate(_events(4)):
            wal.append(pos, event)
        wal.close()
        tail = next(tmp_path.glob("wal-*.seg.open"))
        data = tail.read_bytes()
        tail.write_bytes(data[:-7])  # tear the last record mid-payload
        wal, replayed = WriteAheadLog.open(tmp_path, fsync=False)
        assert [p for p, _ in replayed] == [0, 1, 2]
        # The torn suffix is gone from disk and appends continue cleanly.
        wal.append(3, _events(1)[0])
        wal.close()
        _, again = WriteAheadLog.open(tmp_path, fsync=False)
        assert [p for p, _ in again] == [0, 1, 2, 3]

    def test_corrupt_tail_checksum_is_truncated(self, tmp_path):
        wal, _ = WriteAheadLog.open(tmp_path, fsync=False)
        for pos, event in enumerate(_events(3)):
            wal.append(pos, event)
        wal.close()
        tail = next(tmp_path.glob("wal-*.seg.open"))
        data = bytearray(tail.read_bytes())
        data[-1] ^= 0xFF  # flip a payload byte of the final record
        tail.write_bytes(bytes(data))
        _, replayed = WriteAheadLog.open(tmp_path, fsync=False)
        assert [p for p, _ in replayed] == [0, 1]

    def test_corrupt_sealed_segment_raises(self, tmp_path):
        wal, _ = WriteAheadLog.open(tmp_path, segment_bytes=64, fsync=False)
        for pos, event in enumerate(_events(20)):
            wal.append(pos, event)
        wal.close()
        sealed = sorted(tmp_path.glob("wal-*.seg"))[0]
        data = bytearray(sealed.read_bytes())
        data[10] ^= 0xFF
        sealed.write_bytes(bytes(data))
        with pytest.raises(WalCorruptionError, match="sealed segment"):
            WriteAheadLog.open(tmp_path, fsync=False)

    def test_empty_open_segment(self, tmp_path):
        (tmp_path / "wal-000000.seg.open").write_bytes(b"")
        wal, replayed = WriteAheadLog.open(tmp_path, fsync=False)
        assert replayed == []
        wal.append(0, _events(1)[0])
        wal.close()
        _, again = WriteAheadLog.open(tmp_path, fsync=False)
        assert [p for p, _ in again] == [0]

    def test_append_after_close_rejected(self, tmp_path):
        wal, _ = WriteAheadLog.open(tmp_path, fsync=False)
        wal.close()
        with pytest.raises(ValueError, match="closed"):
            wal.append(0, _events(1)[0])


# ---------------------------------------------------------------------------
# Run lock
# ---------------------------------------------------------------------------
class TestRunLock:
    def test_acquire_release_roundtrip(self, tmp_path):
        lock = RunLock(tmp_path / "LOCK")
        assert lock.acquire(LockInfo(pid=os.getpid())) is None
        assert (tmp_path / "LOCK").exists()
        lock.release()
        assert not (tmp_path / "LOCK").exists()

    def test_live_owner_blocks(self, tmp_path):
        first = RunLock(tmp_path / "LOCK")
        first.acquire(LockInfo(pid=os.getpid()))
        second = RunLock(tmp_path / "LOCK")
        with pytest.raises(WalLockedError, match="live pid"):
            second.acquire(LockInfo(pid=os.getpid()))
        first.release()

    def test_dead_owner_is_reclaimed(self, tmp_path):
        proc = multiprocessing.get_context("fork").Process(target=lambda: None)
        proc.start()
        proc.join()
        dead = LockInfo(pid=proc.pid, session="rdDEAD", shards=2)
        (tmp_path / "LOCK").write_text(dead.to_json())
        lock = RunLock(tmp_path / "LOCK")
        stale = lock.acquire(LockInfo(pid=os.getpid()))
        assert stale is not None
        assert stale.pid == proc.pid
        assert stale.session == "rdDEAD"
        lock.release()

    def test_torn_lock_body_counts_as_stale(self, tmp_path):
        (tmp_path / "LOCK").write_text('{"pid": 12')
        lock = RunLock(tmp_path / "LOCK")
        assert lock.acquire(LockInfo(pid=os.getpid())) is None
        lock.release()


# ---------------------------------------------------------------------------
# Checkpoint store
# ---------------------------------------------------------------------------
def _checkpoint(watermark, tag="x"):
    return Checkpoint(
        watermark=watermark,
        snapshot={"tag": tag},
        plan_state={"entries": []},
        results=[tag] * watermark,
        counters={"events": watermark * 10},
    )


class TestCheckpointStore:
    def test_save_load_roundtrip(self, tmp_path):
        store = CheckpointStore(tmp_path, fsync=False)
        store.save(_checkpoint(3, tag="a"))
        loaded = store.load_latest()
        assert loaded is not None
        assert loaded.watermark == 3
        assert loaded.snapshot == {"tag": "a"}
        assert loaded.results == ["a", "a", "a"]

    def test_retention_prunes_oldest(self, tmp_path):
        store = CheckpointStore(tmp_path, retain=2, fsync=False)
        for w in (1, 2, 3):
            store.save(_checkpoint(w))
        names = sorted(p.name for p in tmp_path.glob("ckpt-*.bin"))
        assert names == ["ckpt-00000002.bin", "ckpt-00000003.bin"]
        assert not list(tmp_path.glob("*.tmp"))

    def test_corrupt_newest_falls_back(self, tmp_path):
        store = CheckpointStore(tmp_path, fsync=False)
        store.save(_checkpoint(1, tag="old"))
        newest = store.save(_checkpoint(2, tag="new"))
        data = bytearray(newest.read_bytes())
        data[-3] ^= 0xFF
        newest.write_bytes(bytes(data))
        loaded = store.load_latest()
        assert loaded is not None
        assert loaded.watermark == 1
        assert loaded.snapshot == {"tag": "old"}

    def test_all_corrupt_returns_none(self, tmp_path):
        store = CheckpointStore(tmp_path, fsync=False)
        path = store.save(_checkpoint(1))
        path.write_bytes(b"not a checkpoint")
        assert store.load_latest() is None

    def test_strict_load_raises_on_bad_magic(self, tmp_path):
        store = CheckpointStore(tmp_path, fsync=False)
        path = store.save(_checkpoint(1))
        path.write_bytes(b"XXXXXXXX" + path.read_bytes()[8:])
        with pytest.raises(CheckpointError, match="magic"):
            store.load(path)


# ---------------------------------------------------------------------------
# Durable serving: parity and crash-point sweeps
# ---------------------------------------------------------------------------
class TestDurableServing:
    def test_durable_run_matches_plain_run(
        self, stream, config, reference_json, tmp_path
    ):
        durable = replace(
            config,
            durability=DurabilityConfig(directory=tmp_path, fsync=False),
        )
        report = _serve(stream, durable)
        assert _window_results_json(report) == reference_json
        assert report.stats.wal_records == stream.num_events
        assert report.stats.checkpoints == len(report.results)
        assert report.stats.resumes == 0

    def test_reusing_directory_without_resume_is_refused(
        self, stream, config, tmp_path
    ):
        durable = replace(
            config,
            durability=DurabilityConfig(directory=tmp_path, fsync=False),
        )
        _serve(stream, durable)
        with pytest.raises(ValueError, match="--resume"):
            _serve(stream, durable)

    @pytest.mark.parametrize("depth", [1, 4])
    @pytest.mark.parametrize("kill_point", [0, 7, 14])
    def test_crash_point_parity(
        self, stream, config, reference_json, tmp_path, depth, kill_point
    ):
        cfg = replace(config, pipeline_depth=depth)
        reference = reference_json
        if depth != config.pipeline_depth:
            reference = _window_results_json(_serve(stream, cfg))
        crash = replace(
            cfg,
            durability=DurabilityConfig(
                directory=tmp_path, fsync=False, abort_after_commit=kill_point
            ),
        )
        with pytest.raises(SimulatedCrash):
            _serve(stream, crash)
        resumed = _serve(
            stream,
            replace(
                cfg,
                durability=DurabilityConfig(
                    directory=tmp_path, fsync=False, resume=True
                ),
            ),
        )
        assert _window_results_json(resumed) == reference
        assert resumed.stats.resumes == 1
        assert resumed.stats.recovered_windows == kill_point + 1

    def test_sparse_checkpoint_interval_parity(
        self, stream, config, reference_json, tmp_path
    ):
        crash = replace(
            config,
            durability=DurabilityConfig(
                directory=tmp_path,
                fsync=False,
                checkpoint_interval=4,
                abort_after_commit=6,
            ),
        )
        with pytest.raises(SimulatedCrash):
            _serve(stream, crash)
        resumed = _serve(
            stream,
            replace(
                config,
                durability=DurabilityConfig(
                    directory=tmp_path,
                    fsync=False,
                    checkpoint_interval=4,
                    resume=True,
                ),
            ),
        )
        assert _window_results_json(resumed) == reference_json
        # Watermark snaps back to the last checkpoint cadence boundary.
        assert resumed.stats.recovered_windows == 4
        assert resumed.stats.replayed_windows >= 3

    def test_checkpoint_newer_than_wal_tail(
        self, stream, config, reference_json, tmp_path
    ):
        crash = replace(
            config,
            durability=DurabilityConfig(
                directory=tmp_path, fsync=False, abort_after_commit=9
            ),
        )
        with pytest.raises(SimulatedCrash):
            _serve(stream, crash)
        # Hand-delete the WAL: the checkpoint now claims more progress
        # than the (empty) log.  Recovery re-consumes the missing events
        # from the live source and still byte-matches.
        for path in (tmp_path / "wal").glob("wal-*"):
            path.unlink()
        resumed = _serve(
            stream,
            replace(
                config,
                durability=DurabilityConfig(
                    directory=tmp_path, fsync=False, resume=True
                ),
            ),
        )
        assert _window_results_json(resumed) == reference_json
        assert resumed.stats.recovered_windows == 10
        assert resumed.stats.replayed_windows == 0

    def test_resume_after_clean_completion(
        self, stream, config, reference_json, tmp_path
    ):
        durable = replace(
            config,
            durability=DurabilityConfig(directory=tmp_path, fsync=False),
        )
        _serve(stream, durable)
        resumed = _serve(
            stream,
            replace(
                config,
                durability=DurabilityConfig(
                    directory=tmp_path, fsync=False, resume=True
                ),
            ),
        )
        assert _window_results_json(resumed) == reference_json
        assert resumed.stats.recovered_windows == len(resumed.results)

    def test_mismatched_window_is_refused(self, stream, config, tmp_path):
        durable = replace(
            config,
            durability=DurabilityConfig(directory=tmp_path, fsync=False),
        )
        _serve(stream, durable)
        other = replace(
            config,
            window=WINDOW / 2,
            durability=DurabilityConfig(
                directory=tmp_path, fsync=False, resume=True
            ),
        )
        with pytest.raises(ValueError, match="refusing to mix"):
            _serve(stream, other)


class TestShardedDurability:
    @pytest.mark.parametrize("shards, depth, kill_point", [(2, 1, 4), (2, 4, 11)])
    def test_sharded_crash_point_parity(
        self, stream, config, tmp_path, shards, depth, kill_point
    ):
        cfg = replace(config, pipeline_depth=depth)
        reference = _window_results_json(_serve(stream, cfg, shards=shards))
        crash = replace(
            cfg,
            durability=DurabilityConfig(
                directory=tmp_path, fsync=False, abort_after_commit=kill_point
            ),
        )
        with pytest.raises(SimulatedCrash):
            _serve(stream, crash, shards=shards)
        resumed = _serve(
            stream,
            replace(
                cfg,
                durability=DurabilityConfig(
                    directory=tmp_path, fsync=False, resume=True
                ),
            ),
            shards=shards,
        )
        assert _window_results_json(resumed) == reference
        assert resumed.stats.resumes == 1
        assert resumed.stats.recovered_windows == kill_point + 1
        # Per-shard counters are rebuilt from the checkpointed window
        # accounting: every shard serves every window, recovered or not.
        assert all(
            s.windows == len(resumed.results)
            for s in resumed.stats.shard_stats
        )

    def test_sharded_matches_single_process(self, stream, config, tmp_path):
        durable = replace(
            config,
            durability=DurabilityConfig(directory=tmp_path, fsync=False),
        )
        sharded = _serve(stream, durable, shards=2)
        plain = _serve(stream, config)
        assert _window_results_json(sharded) == _window_results_json(plain)


# ---------------------------------------------------------------------------
# Recovery harness (real SIGKILL)
# ---------------------------------------------------------------------------
class TestRecoverHarness:
    def test_single_process_sigkill_sweep(self, stream, config, tmp_path):
        report, _ = run_recover_sweep(
            stream, SPEC, config=config, kill_points=[7], root=str(tmp_path)
        )
        assert report.ok
        assert report.exit_code == 0
        (outcome,) = report.outcomes
        assert outcome.exitcode == -signal.SIGKILL
        assert outcome.identical
        assert outcome.recovered_windows == 8

    def test_sharded_sigkill_sweep_and_determinism(self, stream, config, tmp_path):
        first, _ = run_recover_sweep(
            stream,
            SPEC,
            config=config,
            shards=2,
            kill_points=[5],
            root=str(tmp_path / "a"),
        )
        second, _ = run_recover_sweep(
            stream,
            SPEC,
            config=config,
            shards=2,
            kill_points=[5],
            root=str(tmp_path / "b"),
        )
        assert first.ok and second.ok
        assert first.to_json() == second.to_json()

    def test_out_of_range_kill_point_rejected(self, stream, config, tmp_path):
        with pytest.raises(ValueError, match="out of range"):
            run_recover_sweep(
                stream, SPEC, config=config, kill_points=[99], root=str(tmp_path)
            )


# ---------------------------------------------------------------------------
# SIGKILL chaos fault class + deterministic restart backoff
# ---------------------------------------------------------------------------
class TestSigkillChaos:
    def test_schedule_sampling_is_deterministic_and_bounded(self):
        a = ShardKillSchedule.sample(seed=11, shards=2, num_windows=15, kills=2)
        b = ShardKillSchedule.sample(seed=11, shards=2, num_windows=15, kills=2)
        assert a.kills == b.kills
        assert len(a.kills) == 2
        for shard, window in a.kills:
            assert 0 <= shard < 2
            assert 0 <= window < 5  # 15 windows - margin 10

    def test_too_few_windows_schedules_nothing(self):
        empty = ShardKillSchedule.sample(seed=1, shards=2, num_windows=8)
        assert empty.kills == ()

    def test_sigkilled_worker_restarts_without_leaks(self, stream, config):
        cfg = ShardedConfig(
            shards=2,
            service=config,
            sigkill_windows=((0, 3),),
            max_restarts=3,
            restart_backoff_s=0.001,
            restart_backoff_cap_s=0.004,
        )
        reference = _serve(stream, config, shards=2)
        killed = ShardedService(config=cfg).serve(stream, SPEC)
        assert _window_results_json(killed) == _window_results_json(reference)
        assert killed.stats.sigkills == 1
        assert killed.stats.restarts == 1
        assert sum(s.restart_attempts for s in killed.stats.shard_stats) == 1
        assert killed.stats.as_dict()["sigkills"] == 1
        assert killed.stats.as_dict()["restart_attempts"] == 1

    def test_chaos_report_carries_sigkills(self, stream, config):
        schedule = ChaosSchedule(seed=5)
        kills = ShardKillSchedule(kills=((1, 2),))
        chaos_cfg = replace(
            config, retry=RetryPolicy(max_attempts=4, backoff_s=0.0005)
        )
        _, first = run_chaos(
            stream, SPEC, schedule, config=chaos_cfg, shards=2, shard_kills=kills
        )
        _, second = run_chaos(
            stream, SPEC, schedule, config=chaos_cfg, shards=2, shard_kills=kills
        )
        assert first.sigkills == 1
        assert first.restarts >= 1
        assert json.dumps(first.as_dict(), sort_keys=True) == json.dumps(
            second.as_dict(), sort_keys=True
        )

    def test_shard_kills_require_sharded_run(self, stream, config):
        schedule = ChaosSchedule(seed=5)
        chaos_cfg = replace(
            config, retry=RetryPolicy(max_attempts=4, backoff_s=0.0005)
        )
        with pytest.raises(ValueError, match="shard"):
            run_chaos(
                stream,
                SPEC,
                schedule,
                config=chaos_cfg,
                shards=0,
                shard_kills=ShardKillSchedule(kills=((0, 1),)),
            )

    def test_backoff_config_validation(self, config):
        with pytest.raises(ValueError):
            ShardedConfig(shards=2, service=config, restart_backoff_s=-1.0)
        with pytest.raises(ValueError):
            ShardedConfig(
                shards=2,
                service=config,
                restart_backoff_s=0.5,
                restart_backoff_cap_s=0.1,
            )


# ---------------------------------------------------------------------------
# SLO integration
# ---------------------------------------------------------------------------
class TestSloRestartBudget:
    def test_resumes_count_against_restart_budget(self):
        stats = SimpleNamespace(restarts=2, resumes=1)
        assert SLOMonitor.observe(stats, "restarts") == 3.0

    def test_single_process_stats_read_zero(self):
        assert SLOMonitor.observe(SimpleNamespace(), "restarts") == 0.0


# ---------------------------------------------------------------------------
# Config validation
# ---------------------------------------------------------------------------
class TestDurabilityConfig:
    def test_rejects_bad_knobs(self):
        with pytest.raises(ValueError):
            DurabilityConfig(checkpoint_interval=0)
        with pytest.raises(ValueError):
            DurabilityConfig(retain=0)
        with pytest.raises(ValueError):
            DurabilityConfig(segment_bytes=8)

    def test_paths_hang_off_the_root(self, tmp_path):
        cfg = DurabilityConfig(directory=tmp_path)
        assert cfg.wal_dir == tmp_path / "wal"
        assert cfg.checkpoint_dir == tmp_path / "checkpoints"
        assert cfg.lock_path == tmp_path / "LOCK"

    def test_load_shedding_is_incompatible(self):
        with pytest.raises(ValueError):
            ServiceConfig(
                window=1.0,
                load_shedding=True,
                durability=DurabilityConfig(directory="x"),
            )
