"""Unit tests for repro.graphs.dynamic."""

import numpy as np
import pytest

from repro.graphs.dynamic import DynamicGraph
from repro.graphs.generators import generate_dynamic_graph
from repro.graphs.snapshot import GraphSnapshot


def _line(edges, n=4, feature_dim=2):
    return GraphSnapshot.from_edges(n, edges, feature_dim=feature_dim)


class TestContainer:
    def test_requires_snapshots(self):
        with pytest.raises(ValueError):
            DynamicGraph([])

    def test_requires_consistent_feature_dim(self):
        with pytest.raises(ValueError):
            DynamicGraph([_line([(0, 1)], feature_dim=2),
                          _line([(0, 1)], feature_dim=3)])

    def test_timestamps_are_normalized(self):
        graph = DynamicGraph([_line([(0, 1)]), _line([(1, 2)])])
        assert [s.timestamp for s in graph] == [0, 1]

    def test_len_getitem_iter(self, small_graph):
        assert len(small_graph) == small_graph.num_snapshots == 5
        assert small_graph[0] is small_graph.snapshots[0]
        assert sum(1 for _ in small_graph) == 5

    def test_subrange(self, small_graph):
        sub = small_graph.subrange(1, 4)
        assert sub.num_snapshots == 3
        assert sub[0].num_edges == small_graph[1].num_edges
        with pytest.raises(ValueError):
            small_graph.subrange(3, 2)


class TestChangeAnalysis:
    def test_first_snapshot_fully_changed(self):
        graph = DynamicGraph([_line([(0, 1)])])
        np.testing.assert_array_equal(graph.changed_vertices(0), [0, 1, 2, 3])
        assert graph.dissimilarity(0) == 1.0

    def test_identical_snapshots_unchanged(self):
        snapshot = _line([(0, 1), (1, 2)])
        graph = DynamicGraph([snapshot, snapshot])
        assert len(graph.changed_vertices(1)) == 0
        assert graph.dissimilarity(1) == 0.0

    def test_changed_vertices_detects_edge_insert(self):
        graph = DynamicGraph([_line([(0, 1)]), _line([(0, 1), (0, 2)])])
        np.testing.assert_array_equal(graph.changed_vertices(1), [2])

    def test_changed_vertices_detects_edge_delete(self):
        graph = DynamicGraph([_line([(0, 1), (0, 2)]), _line([(0, 1)])])
        np.testing.assert_array_equal(graph.changed_vertices(1), [2])

    def test_changed_vertices_detects_feature_change(self):
        base = _line([(0, 1)]).with_features(np.zeros((4, 2)))
        features = np.zeros((4, 2))
        features[3, 0] = 1.0
        changed = _line([(0, 1)]).with_features(features)
        graph = DynamicGraph([base, changed])
        np.testing.assert_array_equal(graph.changed_vertices(1), [3])

    def test_new_vertices_count_as_changed(self):
        graph = DynamicGraph(
            [_line([(0, 1)], n=4), _line([(0, 1)], n=6)]
        )
        np.testing.assert_array_equal(graph.changed_vertices(1), [4, 5])

    def test_changed_cache_is_consistent(self, small_graph):
        first = small_graph.changed_vertices(2)
        second = small_graph.changed_vertices(2)
        np.testing.assert_array_equal(first, second)

    def test_avg_dissimilarity_near_target(self):
        graph = generate_dynamic_graph(
            200, 800, 6, dissimilarity=0.2, feature_dim=4, seed=0
        )
        assert graph.avg_dissimilarity() == pytest.approx(0.2, abs=0.08)

    def test_single_snapshot_avg_dissimilarity(self):
        graph = DynamicGraph([_line([(0, 1)])])
        assert graph.avg_dissimilarity() == 0.0


class TestAffectedSets:
    def test_affected_expands_changed(self):
        # 2 -> 3; a new in-edge at 2 invalidates 3 after one layer.
        before = _line([(0, 1), (2, 3)])
        after = _line([(0, 1), (0, 2), (2, 3)])  # vertex 2's in-row changes
        graph = DynamicGraph([before, after])
        np.testing.assert_array_equal(graph.changed_vertices(1), [2])
        np.testing.assert_array_equal(graph.affected_vertices(1, 1), [2, 3])

    def test_affected_fraction_bounds(self, small_graph):
        for t in range(small_graph.num_snapshots):
            fraction = small_graph.affected_fraction(t, 2)
            assert 0.0 <= fraction <= 1.0
            assert fraction >= small_graph.dissimilarity(t) - 1e-12


class TestStats:
    def test_stats_fields(self, small_graph):
        stats = small_graph.stats()
        assert stats.num_snapshots == 5
        assert stats.feature_dim == 6
        assert len(stats.num_vertices) == 5
        assert len(stats.dissimilarity) == 4
        assert stats.avg_vertices == pytest.approx(np.mean(stats.num_vertices))
        assert "T=5" in stats.summary()

    def test_max_vertices(self):
        graph = DynamicGraph([_line([(0, 1)], n=4), _line([(0, 1)], n=7)])
        assert graph.max_vertices == 7

    def test_repr(self, small_graph):
        assert "small" in repr(small_graph)
