"""Unit tests for repro.accel.energy (Horowitz 45nm model)."""

import pytest

from repro.accel.energy import EnergyBreakdown, EnergyModel, EnergyParams


class TestEnergyParams:
    def test_mac_energy_is_mult_plus_add(self):
        params = EnergyParams()
        assert params.pj_per_mac == pytest.approx(3.7 + 0.9)

    def test_sram_sqrt_scaling(self):
        params = EnergyParams()
        base = params.sram_word_pj(8 * 1024)
        assert base == pytest.approx(params.sram_8kb_word_pj)
        assert params.sram_word_pj(32 * 1024) == pytest.approx(2 * base)

    def test_sram_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            EnergyParams().sram_word_pj(0)


class TestEnergyBreakdown:
    def test_total_and_control_fraction(self):
        breakdown = EnergyBreakdown(6.0, 2.0, 1.0, 1.0)
        assert breakdown.total == 10.0
        assert breakdown.control_fraction() == pytest.approx(0.1)

    def test_empty_control_fraction(self):
        assert EnergyBreakdown().control_fraction() == 0.0

    def test_addition(self):
        total = EnergyBreakdown(1, 2, 3, 4) + EnergyBreakdown(1, 1, 1, 1)
        assert total.computation == 2
        assert total.control == 5

    def test_as_dict_keys(self):
        keys = set(EnergyBreakdown().as_dict())
        assert keys == {"computation", "on_chip", "off_chip", "control"}


class TestEnergyModel:
    def test_compute_energy_by_hand(self):
        model = EnergyModel()
        # 1000 MACs at 4.6 pJ, no SRAM traffic.
        assert model.compute_energy(1000, 0.0, 8 * 1024) == pytest.approx(4.6e-9)

    def test_dram_energy_by_hand(self):
        model = EnergyModel()
        # 400 bytes = 100 words at the configured per-word energy.
        expected = 100 * model.params.dram_word_pj * 1e-12
        assert model.dram_energy(400) == pytest.approx(expected)

    def test_noc_energy_scales_with_byte_hops(self):
        model = EnergyModel()
        assert model.noc_energy(2000) == pytest.approx(2 * model.noc_energy(1000))

    def test_breakdown_categories(self):
        model = EnergyModel()
        breakdown = model.breakdown(
            macs=1e6,
            sram_bytes=1e6,
            sram_capacity_bytes=256 * 1024,
            noc_byte_hops=1e6,
            dram_bytes=1e6,
            config_events=10,
        )
        assert breakdown.computation > 0
        assert breakdown.on_chip > 0
        assert breakdown.off_chip > 0
        assert breakdown.control > 0
        assert breakdown.total == pytest.approx(
            breakdown.computation + breakdown.on_chip + breakdown.off_chip
            + breakdown.control
        )

    def test_custom_params(self):
        cheap = EnergyModel(EnergyParams(fp32_mult_pj=1.0, fp32_add_pj=0.0))
        default = EnergyModel()
        assert cheap.compute_energy(100, 0, 8192) < default.compute_energy(
            100, 0, 8192
        )
