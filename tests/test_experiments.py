"""Unit tests for the experiment runner, report, and ablation harness."""

import pytest

from repro.experiments.ablation import (
    ABLATION_VARIANTS,
    ablation_variant,
    run_ablation,
)
from repro.experiments.report import FigureResult, format_table
from repro.experiments.runner import (
    BASELINE_ORDER,
    ExperimentConfig,
    ExperimentRunner,
)

FAST = ExperimentConfig(scale=0.02, snapshots=4, large_dataset_shrink=0.1)


class TestExperimentConfig:
    def test_dataset_scale_shrinks_large(self):
        config = ExperimentConfig(scale=0.1, large_dataset_shrink=0.2)
        assert config.dataset_scale("Wikipedia") == pytest.approx(0.1)
        assert config.dataset_scale("Flicker") == pytest.approx(0.02)
        assert config.dataset_scale("MB") == pytest.approx(0.02)


class TestRunner:
    def test_graph_caching(self):
        runner = ExperimentRunner(FAST)
        assert runner.graph("Twitter") is runner.graph("Twitter")
        assert runner.graph("Twitter") is not runner.graph(
            "Twitter", dissimilarity=0.2
        )

    def test_graph_respects_config(self):
        runner = ExperimentRunner(FAST)
        graph = runner.graph("Twitter")
        assert graph.num_snapshots == 4

    def test_spec_uses_dataset_feature_dim(self):
        runner = ExperimentRunner(FAST)
        assert runner.spec("Wikipedia").feature_dim == 172
        assert runner.spec("Twitter").feature_dim == 768

    def test_all_accelerators_order(self):
        runner = ExperimentRunner(FAST)
        names = [m.name for m in runner.all_accelerators()]
        assert names == [*BASELINE_ORDER, "DiTile-DGNN"]

    def test_compare_returns_all_models(self):
        runner = ExperimentRunner(FAST)
        results = runner.compare("Twitter")
        assert set(results) == {*BASELINE_ORDER, "DiTile-DGNN"}
        for result in results.values():
            assert result.execution_cycles > 0


class TestReport:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.5], ["x", 3]])
        lines = text.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        assert "a" in lines[0] and "bb" in lines[0]

    def test_figure_result_to_text(self):
        result = FigureResult(
            figure_id="Figure X",
            title="demo",
            headers=["k", "v"],
            rows=[["a", 1.0]],
            notes=["a note"],
            paper_values={"target": "42"},
        )
        text = result.to_text()
        assert "Figure X" in text
        assert "a note" in text
        assert "target=42" in text
        assert str(result) == text

    def test_row_dict(self):
        result = FigureResult("f", "t", ["k", "v"], [["a", 1], ["b", 2]])
        assert result.row_dict()["b"] == ["b", 2]


class TestAblationHarness:
    def test_variant_names(self):
        assert len(ABLATION_VARIANTS) == 7
        assert "DiTile-DGNN" in ABLATION_VARIANTS

    def test_unknown_variant(self):
        with pytest.raises(KeyError):
            ablation_variant("NoEverything")

    def test_variant_flags(self):
        nops = ablation_variant("NoPs")
        assert not nops.options.enable_parallelism
        assert nops.options.enable_balance
        assert nops.reconfigurable_noc

        nora = ablation_variant("NoRa")
        assert nora.options.enable_parallelism
        assert not nora.reconfigurable_noc
        assert nora.hardware.noc.topology == "mesh"

        onlyra = ablation_variant("OnlyRa")
        assert not onlyra.options.enable_parallelism
        assert not onlyra.options.enable_balance
        assert onlyra.reconfigurable_noc

    def test_full_variant_is_fastest(self, medium_graph, medium_spec):
        results = run_ablation(medium_graph, medium_spec)
        base = results["DiTile-DGNN"].execution_cycles
        for name, result in results.items():
            if name != "DiTile-DGNN":
                assert result.execution_cycles >= base * 0.999, name

    def test_subset_of_variants(self, medium_graph, medium_spec):
        results = run_ablation(
            medium_graph, medium_spec, variants=["DiTile-DGNN", "NoPs"]
        )
        assert set(results) == {"DiTile-DGNN", "NoPs"}
