"""Tests for result export and the pipeline Gantt/CSV views."""

import csv

import pytest

from repro.accel.pipeline import PipelineSimulator
from repro.cli import main
from repro.ditile import DiTileAccelerator
from repro.experiments.export import export_results, figure_to_csv
from repro.experiments.report import FigureResult


@pytest.fixture
def sample_results():
    return [
        FigureResult("Figure 7", "ops", ["a", "b"], [["x", 1], ["y", 2]]),
        FigureResult("Table 1", "datasets", ["n"], [["z"]], notes=["hi"]),
    ]


class TestExport:
    def test_csv_round_trip(self, sample_results, tmp_path):
        path = tmp_path / "fig.csv"
        figure_to_csv(sample_results[0], path)
        with open(path) as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["a", "b"]
        assert rows[1] == ["x", "1"]

    def test_export_directory(self, sample_results, tmp_path):
        written = export_results(sample_results, tmp_path / "out")
        assert (tmp_path / "out" / "figure_7.csv").exists()
        assert (tmp_path / "out" / "table_1.csv").exists()
        report = (tmp_path / "out" / "REPORT.md").read_text()
        assert "Figure 7" in report
        assert "note: hi" in report
        assert written["report"].name == "REPORT.md"

    def test_cli_reproduce_with_out(self, tmp_path):
        out = tmp_path / "results"
        assert main(
            ["reproduce", "figure14", "--out", str(out)]
        ) == 0
        assert (out / "figure_14.csv").exists()
        assert (out / "REPORT.md").exists()


class TestGantt:
    @pytest.fixture
    def result(self, medium_graph, medium_spec):
        model = DiTileAccelerator()
        plan = model.plan(medium_graph, medium_spec)
        return PipelineSimulator(model.hardware).run(plan)

    def test_gantt_dimensions(self, result):
        text = result.gantt_text(width=40)
        lines = text.splitlines()
        assert len(lines) == result.num_tiles + 1  # tiles + legend
        for line in lines[:-1]:
            bar = line.split("|")[1]
            assert len(bar) == 40
            assert set(bar) <= {"g", "r", "s", "t", "."}

    def test_gantt_empty(self):
        from repro.accel.pipeline import PipelineResult

        empty = PipelineResult(0.0, {}, [])
        assert "empty" in empty.gantt_text()

    def test_to_rows_matches_segments(self, result):
        rows = result.to_rows()
        total_segments = sum(
            len(t.segments) for t in result.timelines.values()
        )
        assert len(rows) == total_segments
        for column, row, kind, start, end, snapshot in rows:
            assert end > start
            assert kind in ("gnn", "rnn", "spatial", "temporal")
