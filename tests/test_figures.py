"""Shape tests for the figure reproductions (fast, reduced-scale config).

Each figure is checked for the paper's qualitative claims — who wins,
orderings, trends — not for absolute values.
"""

import pytest

from repro.experiments.figures import (
    figure7,
    figure8,
    figure9,
    figure10,
    figure11a,
    figure11b,
    figure13,
    figure14,
    table1,
)
from repro.experiments.runner import ExperimentConfig

FAST = ExperimentConfig(scale=0.02, snapshots=4, large_dataset_shrink=0.1)


@pytest.fixture(scope="module")
def config():
    return FAST


class TestTable1:
    def test_six_rows(self, config):
        result = table1(config)
        assert len(result.rows) == 6
        names = [row[0] for row in result.rows]
        assert names[0] == "PubMed" and names[-1] == "Flicker"

    def test_synthesized_dissimilarity_in_band(self, config):
        for row in table1(config).rows:
            assert 0.03 <= row[8] <= 0.2


class TestFigure7:
    def test_ditile_needs_fewest_ops_everywhere(self, config):
        result = figure7(config)
        for row in result.rows:
            re_alg, race, mega, ditile = row[1], row[2], row[3], row[4]
            assert ditile < race < re_alg, row[0]
            assert ditile < mega < re_alg, row[0]

    def test_average_reduction_vs_re_alg_substantial(self, config):
        avg = figure7(config).rows[-1]
        reduction = 1.0 - avg[4] / avg[1]
        assert 0.45 <= reduction <= 0.8  # paper: 65.7%


class TestFigure8:
    def test_ditile_least_dram_everywhere(self, config):
        for row in figure8(config).rows:
            assert row[4] == min(row[1:5]), row[0]

    def test_average_reduction_vs_re_alg(self, config):
        avg = figure8(config).rows[-1]
        reduction = 1.0 - avg[4] / avg[1]
        assert 0.4 <= reduction <= 0.75  # paper: 58.1%


class TestFigure9:
    def test_ditile_fastest_everywhere(self, config):
        result = figure9(config)
        for row in result.rows[:-1]:
            baselines = row[1:5]
            ditile = row[5]
            assert all(ditile < b for b in baselines), row[0]

    def test_ordering_of_baselines_on_average(self, config):
        avg = figure9(config).rows[-1]
        ready, booster, race, mega, ditile = avg[1:6]
        # Paper Fig. 9: RACE is the closest baseline, Booster the slowest.
        assert race == min(ready, booster, race, mega)
        assert ditile < race


class TestFigure10:
    def test_actual_exceeds_estimate_on_average(self, config):
        avg = figure10(config).rows[-1]
        assert 1.0 <= avg[1] <= 1.2  # DA (paper: +5%)
        assert 1.0 <= avg[2] <= 1.3  # OT (paper: +9%)


class TestFigure11:
    def test_utilization_in_range(self, config):
        for row in figure11a(config).rows:
            assert 0.0 < row[1] <= 1.0

    def test_ablation_variants_all_slower(self, config):
        result = figure11b(config)
        rows = result.row_dict()
        assert rows["DiTile-DGNN"][2] == 0
        for name in ("NoPs", "NoWos", "NoRa", "OnlyPs", "OnlyWos", "OnlyRa"):
            assert rows[name][2] >= 0, name

    def test_single_contribution_worse_than_missing_one(self, config):
        # Paper: Only* variants lose more than No* variants on average.
        rows = figure11b(config).row_dict()
        only_avg = (rows["OnlyPs"][2] + rows["OnlyWos"][2] + rows["OnlyRa"][2]) / 3
        no_avg = (rows["NoPs"][2] + rows["NoWos"][2] + rows["NoRa"][2]) / 3
        assert only_avg >= no_avg


class TestFigure13:
    def test_advantage_decreases_with_dissimilarity(self, config):
        result = figure13(config)
        averages = [row[-1] for row in result.rows]
        assert averages[0] > averages[-1]
        assert all(value > 1.0 for value in averages)


class TestFigure14:
    def test_matches_paper_percentages(self):
        result = figure14()
        values = {(row[0], row[1]): row[2] for row in result.rows}
        assert values[("chip", "tiles")] == pytest.approx(77.8, abs=0.5)
        assert values[("tile", "pe_array")] == pytest.approx(60.5, abs=0.5)
        assert values[("pe", "mac_array")] == pytest.approx(59.4, abs=0.5)
