"""Unit tests for repro.models.gcn."""

import numpy as np
import pytest

from repro.models.gcn import GCNLayer, GCNModel, relu


class TestRelu:
    def test_clamps_negatives(self):
        np.testing.assert_array_equal(
            relu(np.array([-1.0, 0.0, 2.0])), [0.0, 0.0, 2.0]
        )


class TestGCNLayer:
    def test_dims(self):
        layer = GCNLayer(np.zeros((4, 6)))
        assert layer.in_dim == 4
        assert layer.out_dim == 6

    def test_rejects_non_matrix_weight(self):
        with pytest.raises(ValueError):
            GCNLayer(np.zeros(4))

    def test_rejects_bad_bias(self):
        with pytest.raises(ValueError):
            GCNLayer(np.zeros((4, 6)), bias=np.zeros(4))

    def test_combine_applies_activation(self):
        layer = GCNLayer(-np.eye(3))
        out = layer.combine(np.ones((2, 3)))
        np.testing.assert_array_equal(out, np.zeros((2, 3)))

    def test_combine_without_activation(self):
        layer = GCNLayer(-np.eye(3), activation=False)
        out = layer.combine(np.ones((2, 3)))
        np.testing.assert_array_equal(out, -np.ones((2, 3)))

    def test_forward_is_aggregate_then_combine(self, tiny_snapshot, rng):
        layer = GCNLayer(rng.standard_normal((3, 4)))
        x = rng.standard_normal((5, 3))
        expected = layer.combine(tiny_snapshot.aggregate(x))
        np.testing.assert_allclose(layer.forward(tiny_snapshot, x), expected)

    def test_forward_matches_paper_equation(self, tiny_snapshot, rng):
        # Eq. 3: x_l = ReLU(A_hat x_{l-1} W_l), dense reference.
        weight = rng.standard_normal((3, 2))
        layer = GCNLayer(weight)
        x = rng.standard_normal((5, 3))
        dense = relu(tiny_snapshot.normalized_adjacency() @ x @ weight)
        np.testing.assert_allclose(layer.forward(tiny_snapshot, x), dense,
                                   atol=1e-12)


class TestGCNModel:
    def test_create_checks_dims(self):
        with pytest.raises(ValueError):
            GCNModel.create([8])

    def test_rejects_mismatched_layers(self):
        with pytest.raises(ValueError):
            GCNModel([GCNLayer(np.zeros((3, 4))), GCNLayer(np.zeros((5, 2)))])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            GCNModel([])

    def test_model_dims(self):
        model = GCNModel.create([6, 8, 4], seed=0)
        assert model.num_layers == 2
        assert model.in_dim == 6
        assert model.out_dim == 4

    def test_forward_shape(self, tiny_snapshot, rng):
        model = GCNModel.create([3, 7, 5], seed=1)
        out = model.forward(tiny_snapshot, rng.standard_normal((5, 3)))
        assert out.shape == (5, 5)

    def test_forward_all_layers_consistent(self, tiny_snapshot, rng):
        model = GCNModel.create([3, 7, 5], seed=2)
        x = rng.standard_normal((5, 3))
        outputs = model.forward_all_layers(tiny_snapshot, x)
        assert len(outputs) == 2
        np.testing.assert_allclose(outputs[-1], model.forward(tiny_snapshot, x))

    def test_deterministic_creation(self):
        a = GCNModel.create([4, 5], seed=3)
        b = GCNModel.create([4, 5], seed=3)
        np.testing.assert_array_equal(a.layers[0].weight, b.layers[0].weight)

    def test_isolated_vertices_keep_finite_outputs(self, rng):
        from repro.graphs.snapshot import GraphSnapshot

        snapshot = GraphSnapshot.empty(4, feature_dim=3)
        model = GCNModel.create([3, 2], seed=4)
        out = model.forward(snapshot, rng.standard_normal((4, 3)))
        assert np.all(np.isfinite(out))
