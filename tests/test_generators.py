"""Unit tests for repro.graphs.generators."""

import numpy as np
import pytest

from repro.graphs.generators import (
    evolve_snapshot,
    generate_dynamic_graph,
    powerlaw_snapshot,
    random_features,
)


class TestPowerlawSnapshot:
    def test_exact_edge_count(self):
        snapshot = powerlaw_snapshot(100, 500, seed=0)
        assert snapshot.num_edges == 500
        assert snapshot.num_vertices == 100

    def test_no_self_loops(self):
        snapshot = powerlaw_snapshot(50, 300, seed=1)
        src, dst = snapshot.edge_arrays()
        assert not np.any(src == dst)

    def test_skewed_in_degree(self):
        snapshot = powerlaw_snapshot(500, 5000, skew=1.2, seed=2)
        degrees = np.sort(snapshot.in_degree())[::-1]
        # A power-law graph concentrates in-degree on a few hubs.
        top_share = degrees[:25].sum() / degrees.sum()
        assert top_share > 0.2

    def test_deterministic_with_seed(self):
        a = powerlaw_snapshot(60, 240, seed=7)
        b = powerlaw_snapshot(60, 240, seed=7)
        assert a == b

    def test_with_features(self):
        snapshot = powerlaw_snapshot(20, 40, feature_dim=5, seed=3,
                                     with_features=True)
        assert snapshot.features.shape == (20, 5)

    def test_rejects_impossible_density(self):
        with pytest.raises(ValueError):
            powerlaw_snapshot(3, 100, seed=0)

    def test_zero_edges(self):
        snapshot = powerlaw_snapshot(10, 0, seed=0)
        assert snapshot.num_edges == 0


class TestEvolveSnapshot:
    def test_zero_dissimilarity_is_identity(self, rng):
        base = powerlaw_snapshot(50, 200, seed=4)
        evolved = evolve_snapshot(base, 0.0, rng)
        assert evolved == base
        assert evolved.timestamp == base.timestamp + 1

    def test_rejects_bad_dissimilarity(self, rng):
        base = powerlaw_snapshot(10, 20, seed=4)
        with pytest.raises(ValueError):
            evolve_snapshot(base, 1.5, rng)

    def test_changes_roughly_target_fraction(self, rng):
        base = powerlaw_snapshot(400, 2000, seed=5)
        evolved = evolve_snapshot(base, 0.2, rng)
        base_keys = base.row_keys()
        evolved_keys = evolved.row_keys()
        changed = np.sum(base_keys != evolved_keys) / base.num_vertices
        assert 0.1 <= changed <= 0.3

    def test_edge_count_roughly_stable(self, rng):
        base = powerlaw_snapshot(400, 2000, seed=6)
        evolved = evolve_snapshot(base, 0.3, rng)
        assert abs(evolved.num_edges - base.num_edges) <= 0.15 * base.num_edges

    def test_features_updated_for_changed_vertices(self, rng):
        base = powerlaw_snapshot(100, 300, feature_dim=4, seed=7,
                                 with_features=True)
        evolved = evolve_snapshot(base, 0.3, rng)
        assert evolved.features is not None
        assert np.any(evolved.features != base.features)


class TestGenerateDynamicGraph:
    def test_snapshot_count_and_dims(self):
        graph = generate_dynamic_graph(80, 320, 6, feature_dim=9, seed=8)
        assert graph.num_snapshots == 6
        assert graph.feature_dim == 9
        assert all(s.num_vertices == 80 for s in graph)

    def test_dissimilarity_lands_in_band(self):
        graph = generate_dynamic_graph(
            300, 1500, 8, dissimilarity=0.1, seed=9, dissimilarity_jitter=0.25
        )
        assert 0.05 <= graph.avg_dissimilarity() <= 0.15

    def test_jitter_varies_transitions(self):
        graph = generate_dynamic_graph(
            400, 1600, 10, dissimilarity=0.2, seed=10, dissimilarity_jitter=0.4
        )
        dissimilarities = [graph.dissimilarity(t) for t in range(1, 10)]
        assert np.std(dissimilarities) > 0.005

    def test_zero_jitter_is_steady(self):
        graph = generate_dynamic_graph(
            400, 1600, 6, dissimilarity=0.2, seed=11, dissimilarity_jitter=0.0
        )
        dissimilarities = [graph.dissimilarity(t) for t in range(1, 6)]
        assert max(dissimilarities) - min(dissimilarities) < 0.05

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            generate_dynamic_graph(10, 20, 0)
        with pytest.raises(ValueError):
            generate_dynamic_graph(10, 20, 2, dissimilarity_jitter=1.5)

    def test_reproducible(self):
        a = generate_dynamic_graph(50, 200, 4, seed=12)
        b = generate_dynamic_graph(50, 200, 4, seed=12)
        for s_a, s_b in zip(a, b):
            assert s_a == s_b


class TestRandomFeatures:
    def test_shape_and_determinism(self):
        a = random_features(10, 4, seed=1)
        b = random_features(10, 4, seed=1)
        assert a.shape == (10, 4)
        np.testing.assert_array_equal(a, b)
