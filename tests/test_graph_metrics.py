"""Tests for graph structure metrics."""

import numpy as np
import pytest

from repro.graphs.generators import generate_dynamic_graph, powerlaw_snapshot
from repro.graphs.metrics import (
    hill_tail_exponent,
    snapshot_metrics,
    temporal_overlap,
)
from repro.graphs.snapshot import GraphSnapshot


class TestHillEstimator:
    def test_recovers_pareto_exponent(self, rng):
        # Pareto(alpha) samples: the Hill estimator should land near alpha.
        alpha = 2.5
        samples = (rng.pareto(alpha, size=20_000) + 1.0) * 10
        estimate = hill_tail_exponent(samples.astype(np.int64), 0.05)
        assert estimate == pytest.approx(1 + alpha, rel=0.35)

    def test_degenerate_inputs(self):
        assert hill_tail_exponent(np.array([0, 0, 0])) == float("inf")
        assert hill_tail_exponent(np.array([5])) == float("inf")

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            hill_tail_exponent(np.arange(10), 0.0)


class TestSnapshotMetrics:
    def test_powerlaw_graph_is_skewed(self):
        snapshot = powerlaw_snapshot(2000, 20_000, skew=1.0, seed=1)
        metrics = snapshot_metrics(snapshot)
        assert metrics.num_edges == 20_000
        assert metrics.degree_cv > 1.0  # heavy tail
        assert metrics.max_in_degree > 10 * metrics.avg_in_degree

    def test_regular_graph_is_flat(self):
        # A ring: every vertex has in-degree exactly 1.
        edges = [(i, (i + 1) % 50) for i in range(50)]
        metrics = snapshot_metrics(GraphSnapshot.from_edges(50, edges))
        assert metrics.degree_cv == pytest.approx(0.0)
        assert metrics.isolated_fraction == 0.0

    def test_empty_graph(self):
        metrics = snapshot_metrics(GraphSnapshot.empty(10))
        assert metrics.avg_in_degree == 0.0
        assert metrics.isolated_fraction == 1.0


class TestTemporalOverlap:
    def test_high_similarity_graphs_overlap(self):
        graph = generate_dynamic_graph(300, 2400, 4, dissimilarity=0.05, seed=2)
        overlaps = [temporal_overlap(graph, t) for t in range(1, 4)]
        # The paper's §3.1 temporal-similarity regime.
        assert min(overlaps) > 0.85

    def test_volatile_graphs_overlap_less(self):
        stable = generate_dynamic_graph(300, 2400, 3, dissimilarity=0.05, seed=3)
        volatile = generate_dynamic_graph(300, 2400, 3, dissimilarity=0.6, seed=3)
        assert temporal_overlap(volatile, 1) < temporal_overlap(stable, 1)

    def test_rejects_bad_transition(self):
        graph = generate_dynamic_graph(50, 200, 3, seed=4)
        with pytest.raises(ValueError):
            temporal_overlap(graph, 0)
        with pytest.raises(ValueError):
            temporal_overlap(graph, 3)
