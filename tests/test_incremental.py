"""Tests for the exact redundancy-free engine, including the core
equivalence property: incremental inference == full recompute."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.generators import generate_dynamic_graph
from repro.models.dgnn import DGNNModel
from repro.models.incremental import IncrementalDGNN


def _assert_equivalent(model, graph, atol=1e-10):
    full = model.run(graph)
    engine = IncrementalDGNN(model)
    incremental = engine.run(graph)
    for t in range(graph.num_snapshots):
        np.testing.assert_allclose(
            incremental.embeddings[t], full.embeddings[t], atol=atol
        )
        np.testing.assert_allclose(
            incremental.hidden[t], full.hidden[t], atol=atol
        )
    return engine


class TestEquivalence:
    def test_small_graph(self, small_graph):
        model = DGNNModel.create(6, [8, 4], 5, seed=0)
        _assert_equivalent(model, small_graph)

    def test_single_layer(self, small_graph):
        model = DGNNModel.create(6, [4], 3, seed=1)
        _assert_equivalent(model, small_graph)

    def test_three_layers(self, small_graph):
        model = DGNNModel.create(6, [8, 8, 4], 5, seed=2)
        _assert_equivalent(model, small_graph)

    def test_gru_variant(self, small_graph):
        model = DGNNModel.create(6, [8, 4], 5, rnn_kind="gru", seed=3)
        _assert_equivalent(model, small_graph)

    def test_high_dissimilarity(self):
        graph = generate_dynamic_graph(
            50, 200, 4, dissimilarity=0.6, feature_dim=5, seed=4,
            with_features=True,
        )
        model = DGNNModel.create(5, [6, 6], 4, seed=5)
        _assert_equivalent(model, graph)

    def test_zero_dissimilarity(self):
        graph = generate_dynamic_graph(
            50, 200, 4, dissimilarity=0.0, feature_dim=5, seed=6,
            with_features=True,
        )
        model = DGNNModel.create(5, [6], 4, seed=7)
        engine = _assert_equivalent(model, graph)
        # Nothing changed, so nothing after t=0 is recomputed.
        assert all(
            count == 0
            for per_layer in engine.stats.recomputed_rows[1:]
            for count in per_layer
        )

    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        dissimilarity=st.floats(0.0, 0.8),
        layers=st.integers(1, 3),
        snapshots=st.integers(2, 5),
    )
    def test_property_incremental_equals_full(
        self, seed, dissimilarity, layers, snapshots
    ):
        graph = generate_dynamic_graph(
            25,
            90,
            snapshots,
            dissimilarity=dissimilarity,
            feature_dim=4,
            seed=seed,
            with_features=True,
        )
        model = DGNNModel.create(4, [5] * layers, 4, seed=seed)
        _assert_equivalent(model, graph)


class TestStats:
    def test_stats_shape(self, small_graph):
        model = DGNNModel.create(6, [8, 4], 5, seed=8)
        engine = IncrementalDGNN(model)
        engine.run(small_graph)
        stats = engine.stats
        assert len(stats.recomputed_rows) == small_graph.num_snapshots
        assert all(len(p) == 2 for p in stats.recomputed_rows)
        assert stats.changed_seeds[0] == small_graph[0].num_vertices

    def test_reuse_fraction_bounds(self, small_graph):
        model = DGNNModel.create(6, [8, 4], 5, seed=9)
        engine = IncrementalDGNN(model)
        engine.run(small_graph)
        assert 0.0 <= engine.stats.reuse_fraction() < 1.0

    def test_more_reuse_with_lower_dissimilarity(self):
        model = DGNNModel.create(4, [5, 5], 4, seed=10)
        fractions = []
        for dis in (0.05, 0.5):
            graph = generate_dynamic_graph(
                60, 200, 5, dissimilarity=dis, feature_dim=4, seed=11,
                with_features=True,
            )
            engine = IncrementalDGNN(model)
            engine.run(graph)
            fractions.append(engine.stats.reuse_fraction())
        assert fractions[0] > fractions[1]

    def test_affected_sets_grow_with_depth(self, small_graph):
        model = DGNNModel.create(6, [8, 8, 4], 5, seed=12)
        engine = IncrementalDGNN(model)
        engine.run(small_graph)
        for per_layer in engine.stats.recomputed_rows[1:]:
            assert per_layer[0] <= per_layer[1] <= per_layer[2]

    def test_rejects_varying_vertex_counts(self):
        from repro.graphs.dynamic import DynamicGraph
        from repro.graphs.snapshot import GraphSnapshot

        graph = DynamicGraph(
            [
                GraphSnapshot.from_edges(4, [(0, 1)], feature_dim=3),
                GraphSnapshot.from_edges(5, [(0, 1)], feature_dim=3),
            ]
        )
        model = DGNNModel.create(3, [4], 4, seed=13)
        with pytest.raises(ValueError):
            IncrementalDGNN(model).run(graph)
