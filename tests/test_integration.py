"""End-to-end integration tests across subsystem boundaries."""

import numpy as np
import pytest

from repro import (
    DGNNModel,
    DGNNSpec,
    DiTileAccelerator,
    DiTileScheduler,
    HardwareConfig,
    IncrementalDGNN,
    load_dataset,
)
from repro.baselines import ReaDyAccelerator
from repro.experiments import ExperimentConfig, ExperimentRunner


class TestFullPipeline:
    """Dataset -> scheduler -> simulator, end to end."""

    def test_dataset_to_simulation(self):
        graph = load_dataset("Twitter", scale=0.03, snapshots=4, seed=1)
        spec = DGNNSpec.classic(graph.feature_dim)
        model = DiTileAccelerator()
        plan = model.plan(graph, spec)
        result = model.simulate(graph, spec)
        assert plan.factors.tiles_used <= model.hardware.total_tiles
        assert result.execution_cycles > 0
        assert result.execution_seconds > 0
        assert result.total_macs > 0

    def test_scheduler_standalone_matches_accelerator(self):
        graph = load_dataset("Twitter", scale=0.03, snapshots=4, seed=1)
        spec = DGNNSpec.classic(graph.feature_dim)
        hw = HardwareConfig.small()
        standalone = DiTileScheduler(
            hw.total_tiles, float(hw.distributed_buffer_bytes)
        ).plan(graph, spec)
        embedded = DiTileAccelerator(hw).plan(graph, spec)
        assert standalone.tiling.alpha == embedded.tiling.alpha
        assert standalone.factors == embedded.factors

    def test_numeric_model_consistent_with_cost_model_reuse(self):
        """The analytic reuse assumption must hold in the numeric engine:
        lower dissimilarity means fewer recomputed rows AND fewer modelled
        MACs, in the same direction."""
        spec = DGNNSpec(gcn_dims=(8, 8, 8), rnn_hidden_dim=8)
        macs, reuse = [], []
        for dis in (0.05, 0.4):
            graph = load_dataset(
                "Twitter", scale=0.02, snapshots=4, seed=2,
                dissimilarity=dis, with_features=False,
            )
            costs = DiTileAccelerator().build_costs(graph, spec)
            macs.append(costs.total_macs)

            numeric_graph = load_dataset(
                "Twitter", scale=0.02, snapshots=4, seed=2,
                dissimilarity=dis, with_features=True,
            )
            engine = IncrementalDGNN(DGNNModel.create(768, [8, 8], 8, seed=0))
            engine.run(numeric_graph)
            reuse.append(engine.stats.reuse_fraction())
        assert macs[0] < macs[1]
        assert reuse[0] > reuse[1]

    def test_experiment_runner_round_trip(self):
        config = ExperimentConfig(scale=0.02, snapshots=3,
                                  large_dataset_shrink=0.1)
        runner = ExperimentRunner(config)
        results = runner.compare("PubMed")
        ditile = results["DiTile-DGNN"]
        ready = results["ReaDy"]
        assert ditile.execution_cycles < ready.execution_cycles
        assert ditile.energy_joules < ready.energy_joules

    def test_paper_hardware_config_runs(self):
        graph = load_dataset("Twitter", scale=0.03, snapshots=4, seed=3)
        spec = DGNNSpec.classic(graph.feature_dim)
        model = DiTileAccelerator(HardwareConfig.paper())
        result = model.simulate(graph, spec)
        assert result.execution_cycles > 0
        # 256 tiles must beat 16 tiles on a compute-heavy metric.
        small = DiTileAccelerator(HardwareConfig.small()).simulate(graph, spec)
        assert result.cycles.compute < small.cycles.compute


class TestCrossConsistency:
    def test_simulated_macs_match_cost_model(self):
        graph = load_dataset("Twitter", scale=0.03, snapshots=4, seed=4)
        spec = DGNNSpec.classic(graph.feature_dim)
        model = ReaDyAccelerator()
        costs = model.build_costs(graph, spec)
        result = model.simulate(graph, spec)
        assert result.total_macs == pytest.approx(costs.total_macs)
        assert result.dram_bytes == pytest.approx(costs.dram_bytes)

    def test_seeded_runs_are_reproducible(self):
        config = ExperimentConfig(scale=0.02, snapshots=3)
        a = ExperimentRunner(config).compare("Wikipedia")
        b = ExperimentRunner(config).compare("Wikipedia")
        for name in a:
            assert a[name].execution_cycles == pytest.approx(
                b[name].execution_cycles
            )

    def test_numeric_inference_on_dataset_graph(self):
        graph = load_dataset(
            "Wikipedia", scale=0.01, snapshots=3, seed=5, with_features=True
        )
        model = DGNNModel.create(172, [16, 8], 8, seed=6)
        full = model.run(graph)
        incremental = IncrementalDGNN(model).run(graph)
        for t in range(3):
            np.testing.assert_allclose(
                full.hidden[t], incremental.hidden[t], atol=1e-10
            )
