"""Unit tests for graph persistence and edge-stream import."""

import numpy as np
import pytest

from repro.graphs.generators import generate_dynamic_graph
from repro.graphs.io import (
    load_dynamic_graph,
    load_edge_stream,
    save_dynamic_graph,
)


class TestNpzRoundTrip:
    def test_structure_round_trip(self, tmp_path):
        graph = generate_dynamic_graph(50, 200, 4, seed=1, name="saved")
        path = tmp_path / "graph.npz"
        save_dynamic_graph(graph, path)
        loaded = load_dynamic_graph(path)
        assert loaded.name == "saved"
        assert loaded.num_snapshots == 4
        for original, restored in zip(graph, loaded):
            assert original == restored

    def test_features_round_trip(self, tmp_path):
        graph = generate_dynamic_graph(
            20, 60, 3, feature_dim=5, seed=2, with_features=True
        )
        path = tmp_path / "graph.npz"
        save_dynamic_graph(graph, path)
        loaded = load_dynamic_graph(path)
        for original, restored in zip(graph, loaded):
            np.testing.assert_array_equal(original.features, restored.features)

    def test_structure_only_has_no_features(self, tmp_path):
        graph = generate_dynamic_graph(20, 60, 2, seed=3)
        path = tmp_path / "graph.npz"
        save_dynamic_graph(graph, path)
        assert load_dynamic_graph(path)[0].features is None


class TestEdgeStream:
    def test_import_with_header_and_ops(self, tmp_path):
        path = tmp_path / "stream.csv"
        path.write_text(
            "src,dst,time,op\n"
            "0,1,1.0,add\n"
            "1,2,2.0,add\n"
            "0,1,3.0,remove\n"
        )
        graph = load_edge_stream(path)
        assert graph.num_events == 3
        assert graph.edges_at(3.5) == {(1, 2)}

    def test_import_without_header_or_ops(self, tmp_path):
        path = tmp_path / "stream.csv"
        path.write_text("0,1,1.0\n2,3,2.0\n")
        graph = load_edge_stream(path, has_header=False)
        assert graph.num_events == 2
        assert graph.edges_at(2.0) == {(0, 1), (2, 3)}

    def test_comments_and_blanks_skipped(self, tmp_path):
        path = tmp_path / "stream.csv"
        path.write_text("# comment\n\n0,1,1.0\n")
        graph = load_edge_stream(path, has_header=False)
        assert graph.num_events == 1

    def test_short_row_rejected(self, tmp_path):
        path = tmp_path / "stream.csv"
        path.write_text("0,1\n")
        with pytest.raises(ValueError):
            load_edge_stream(path, has_header=False)

    def test_stream_to_discrete_pipeline(self, tmp_path):
        rows = ["src,dst,time"]
        rng = np.random.default_rng(4)
        for t in range(1, 120):
            src, dst = rng.integers(0, 15, size=2)
            if src != dst:
                rows.append(f"{src},{dst},{t}")
        path = tmp_path / "stream.csv"
        path.write_text("\n".join(rows))
        discrete = load_edge_stream(path).discretize(4)
        assert discrete.num_snapshots == 4
        assert discrete[3].num_edges >= discrete[0].num_edges


class TestCorruptedArchives:
    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_dynamic_graph(tmp_path / "nope.npz")

    def test_garbage_file(self, tmp_path):
        path = tmp_path / "garbage.npz"
        path.write_bytes(b"this is not a zip archive")
        with pytest.raises(Exception):
            load_dynamic_graph(path)

    def test_truncated_archive(self, tmp_path):
        graph = generate_dynamic_graph(20, 60, 2, seed=9)
        path = tmp_path / "graph.npz"
        save_dynamic_graph(graph, path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(Exception):
            load_dynamic_graph(path)
