"""Tests for the shared analysis engine: the AST→CFG builder, the
forward worklist dataflow solver, and the project call graph."""

import ast
import textwrap

import pytest

from repro.analysis import (
    CallGraph,
    SourceFile,
    build_cfg,
    fixpoint,
    solve_forward,
)
from repro.analysis.cfg import IMPLICIT, RETURN_NONE, RETURN_VALUE


def cfg_of(src: str):
    tree = ast.parse(textwrap.dedent(src))
    return build_cfg(tree.body[0])


def node_for(cfg, predicate):
    """The unique statement node whose AST matches ``predicate``."""
    matches = [
        n for n in cfg.statement_nodes() if predicate(n.stmt)
    ]
    assert len(matches) == 1, f"expected one match, got {len(matches)}"
    return matches[0]


def is_call_named(name):
    def predicate(stmt):
        return (
            isinstance(stmt, ast.Expr)
            and isinstance(stmt.value, ast.Call)
            and isinstance(stmt.value.func, ast.Name)
            and stmt.value.func.id == name
        )

    return predicate


# ---------------------------------------------------------------------------
# CFG construction
# ---------------------------------------------------------------------------
class TestCFGBuilder:
    def test_straight_line_reaches_exit_implicitly(self):
        cfg = cfg_of("def f():\n    a()\n    b()\n")
        b = node_for(cfg, is_call_named("b"))
        assert cfg.exit in cfg.succ[b.index]
        assert cfg.exit_kinds[b.index] == IMPLICIT
        # No try/with anywhere: nothing can reach the raise exit.
        assert cfg.pred[cfg.raise_exit] == set()

    def test_return_kinds_are_classified(self):
        cfg = cfg_of(
            """
            def f(flag):
                if flag:
                    return 1
                return None
            """
        )
        kinds = sorted(cfg.exit_kinds.values())
        assert kinds == sorted([RETURN_VALUE, RETURN_NONE])

    def test_if_branches_rejoin(self):
        cfg = cfg_of(
            """
            def f(flag):
                if flag:
                    a()
                else:
                    b()
                c()
            """
        )
        c = node_for(cfg, is_call_named("c"))
        a = node_for(cfg, is_call_named("a"))
        b = node_for(cfg, is_call_named("b"))
        assert cfg.succ[a.index] == {c.index}
        assert cfg.succ[b.index] == {c.index}

    def test_loop_has_back_edge_and_zero_iteration_exit(self):
        cfg = cfg_of(
            """
            def f(xs):
                for x in xs:
                    body()
                after()
            """
        )
        head = node_for(cfg, lambda s: isinstance(s, ast.For))
        body = node_for(cfg, is_call_named("body"))
        after = node_for(cfg, is_call_named("after"))
        assert head.index in cfg.succ[body.index]  # back edge
        assert after.index in cfg.succ[head.index]  # zero-iteration exit

    def test_try_body_gets_exception_edge_to_finally(self):
        cfg = cfg_of(
            """
            def f():
                risky()
                try:
                    work()
                finally:
                    cleanup()
            """
        )
        risky = node_for(cfg, is_call_named("risky"))
        work = node_for(cfg, is_call_named("work"))
        cleanup = node_for(cfg, is_call_named("cleanup"))
        fin = next(n for n in cfg.nodes if n.kind == "finally")
        # Inside the try body: an implicit exception edge to the finally.
        assert (work.index, fin.index) in cfg.exc_edges
        # Outside any try: no implicit exception edge at all.
        assert all((risky.index, s) not in cfg.exc_edges for s in cfg.succ[risky.index])
        # The completed finally continues both normally (to the exit) and
        # along the re-raise route (to the raise exit) — the latter as a
        # NORMAL edge, because the cleanup body's effects did happen.
        assert cfg.exit in cfg.succ[cleanup.index]
        assert cfg.raise_exit in cfg.succ[cleanup.index]
        assert (cleanup.index, cfg.raise_exit) not in cfg.exc_edges

    def test_except_handler_catches_body_exception(self):
        cfg = cfg_of(
            """
            def f():
                try:
                    work()
                except ValueError:
                    handle()
                after()
            """
        )
        work = node_for(cfg, is_call_named("work"))
        handle = node_for(cfg, is_call_named("handle"))
        after = node_for(cfg, is_call_named("after"))
        dispatch = next(n for n in cfg.nodes if n.kind == "dispatch")
        assert (work.index, dispatch.index) in cfg.exc_edges
        assert handle.index in cfg.succ[dispatch.index]
        # Unmatched exceptions continue to the function's raise exit.
        assert cfg.raise_exit in cfg.succ[dispatch.index]
        # Both the body and the handler rejoin at the statement after.
        assert after.index in cfg.succ[work.index]
        assert after.index in cfg.succ[handle.index]

    def test_catch_all_handler_swallows_the_dispatch_escape(self):
        cfg = cfg_of(
            """
            def f():
                try:
                    work()
                except BaseException:
                    handle()
            """
        )
        dispatch = next(n for n in cfg.nodes if n.kind == "dispatch")
        assert cfg.raise_exit not in cfg.succ[dispatch.index]

    def test_narrow_handler_lets_the_dispatch_escape(self):
        cfg = cfg_of(
            """
            def f():
                try:
                    work()
                except ValueError:
                    handle()
            """
        )
        dispatch = next(n for n in cfg.nodes if n.kind == "dispatch")
        assert cfg.raise_exit in cfg.succ[dispatch.index]

    def test_with_routes_exceptions_through_with_end(self):
        cfg = cfg_of(
            """
            def f(cm):
                with cm() as h:
                    work(h)
                after()
            """
        )
        work = node_for(
            cfg,
            lambda s: isinstance(s, ast.Expr)
            and isinstance(s.value, ast.Call)
            and isinstance(s.value.func, ast.Name)
            and s.value.func.id == "work",
        )
        with_end = next(n for n in cfg.nodes if n.kind == "with_end")
        after = node_for(cfg, is_call_named("after"))
        # Body exceptions route through __exit__ (the with_end node)...
        assert (work.index, with_end.index) in cfg.exc_edges
        # ...which continues normally and along the re-raise route.
        assert after.index in cfg.succ[with_end.index]
        assert cfg.raise_exit in cfg.succ[with_end.index]
        # The with_end carries the With statement for transfer functions.
        assert isinstance(with_end.stmt, ast.With)

    def test_return_inside_finally_block_routes_through_cleanup(self):
        cfg = cfg_of(
            """
            def f():
                try:
                    return compute()
                finally:
                    cleanup()
            """
        )
        cleanup = node_for(cfg, is_call_named("cleanup"))
        ret = node_for(cfg, lambda s: isinstance(s, ast.Return))
        fin = next(n for n in cfg.nodes if n.kind == "finally")
        # The return detours through the finally, which then reaches exit.
        assert cfg.succ[ret.index] == {fin.index}
        assert cfg.exit in cfg.succ[cleanup.index]

    def test_break_through_finally_reaches_loop_exit(self):
        cfg = cfg_of(
            """
            def f(xs):
                for x in xs:
                    try:
                        break
                    finally:
                        cleanup()
                after()
            """
        )
        cleanup = node_for(cfg, is_call_named("cleanup"))
        after = node_for(cfg, is_call_named("after"))
        assert after.index in cfg.succ[cleanup.index]

    def test_evaluated_exprs_of_compound_heads(self):
        cfg = cfg_of(
            """
            def f(xs):
                for x in xs:
                    if x:
                        work(x)
            """
        )
        head = node_for(cfg, lambda s: isinstance(s, ast.For))
        test = node_for(cfg, lambda s: isinstance(s, ast.If))
        exprs = cfg.evaluated_exprs(head)
        # The loop head evaluates its iterable and target, not its body.
        assert not any(
            isinstance(e, ast.Call)
            for expr in exprs
            for e in ast.walk(expr)
        )
        assert cfg.evaluated_exprs(test) == [test.stmt.test]


class TestPostdominators:
    def test_finally_postdominates_try_body(self):
        cfg = cfg_of(
            """
            def f():
                try:
                    work()
                finally:
                    cleanup()
            """
        )
        work = node_for(cfg, is_call_named("work"))
        cleanup = node_for(cfg, is_call_named("cleanup"))
        post = cfg.postdominators()
        assert cleanup.index in post[work.index]

    def test_branch_arm_does_not_postdominate_entry(self):
        cfg = cfg_of(
            """
            def f(flag):
                if flag:
                    a()
                b()
            """
        )
        a = node_for(cfg, is_call_named("a"))
        b = node_for(cfg, is_call_named("b"))
        post = cfg.postdominators()
        assert a.index not in post[cfg.entry]
        assert b.index in post[cfg.entry]


# ---------------------------------------------------------------------------
# Dataflow solving
# ---------------------------------------------------------------------------
def make_tracker():
    """A transfer tracking `x = create()` -> created, `x.close()` -> closed."""

    def transfer(node, state):
        stmt = node.stmt
        if node.kind != "stmt":
            return state
        if (
            isinstance(stmt, ast.Assign)
            and isinstance(stmt.value, ast.Call)
            and isinstance(stmt.value.func, ast.Name)
            and stmt.value.func.id == "create"
        ):
            state["x"] = "created"
        if (
            isinstance(stmt, ast.Expr)
            and isinstance(stmt.value, ast.Call)
            and isinstance(stmt.value.func, ast.Attribute)
            and stmt.value.func.attr == "close"
        ):
            if state.get("x") == "created":
                state["x"] = "closed"
        return state

    order = {"created": 0, "closed": 1}

    def join(a, b):
        return a if order.get(a, 0) <= order.get(b, 0) else b

    return transfer, join


class TestSolver:
    def test_close_in_finally_is_visible_at_both_exits(self):
        cfg = cfg_of(
            """
            def f(name):
                x = create(name)
                try:
                    fill(x)
                finally:
                    x.close()
            """
        )
        transfer, join = make_tracker()
        state_in, _ = solve_forward(cfg, transfer, {}, join)
        assert state_in[cfg.exit]["x"] == "closed"
        assert state_in[cfg.raise_exit]["x"] == "closed"

    def test_close_in_try_body_is_not_guaranteed(self):
        cfg = cfg_of(
            """
            def f(name):
                x = create(name)
                try:
                    fill(x)
                    x.close()
                except ValueError:
                    pass
            """
        )
        transfer, join = make_tracker()
        state_in, _ = solve_forward(cfg, transfer, {}, join)
        # The except arm skipped the close; the join keeps the leak.
        assert state_in[cfg.exit]["x"] == "created"
        # An exception before the close leaves the function un-closed.
        assert state_in[cfg.raise_exit]["x"] == "created"

    def test_loop_reaches_fixpoint_with_branch_join(self):
        cfg = cfg_of(
            """
            def f(xs, name):
                x = create(name)
                for item in xs:
                    if item:
                        x.close()
                done()
            """
        )
        transfer, join = make_tracker()
        state_in, _ = solve_forward(cfg, transfer, {}, join)
        # Zero iterations (or the false arm) never closes: the join at
        # the loop head must keep "created" despite the closing path.
        assert state_in[cfg.exit]["x"] == "created"

    def test_no_try_means_raise_exit_unreachable(self):
        cfg = cfg_of("def f(name):\n    x = create(name)\n    x.close()\n")
        transfer, join = make_tracker()
        state_in, _ = solve_forward(cfg, transfer, {}, join)
        assert cfg.raise_exit not in state_in
        assert state_in[cfg.exit]["x"] == "closed"


class TestFixpoint:
    def test_converges(self):
        assert fixpoint(lambda n: min(n + 1, 7), 0) == 7

    def test_identity_on_stable_input(self):
        calls = []

        def step(v):
            calls.append(v)
            return v

        assert fixpoint(step, "stable") == "stable"
        assert calls == ["stable"]


# ---------------------------------------------------------------------------
# Call graph
# ---------------------------------------------------------------------------
def graph_of(*texts):
    sources = [
        SourceFile.from_text(text, display_path=f"dist/m{i}.py")
        for i, text in enumerate(texts)
    ]
    return CallGraph.build(sources)


class TestCallGraph:
    def test_reachable_follows_cross_file_name_edges(self):
        graph = graph_of(
            "def a():\n    b()\n",
            "def b():\n    c()\n\ndef unrelated():\n    pass\n",
        )
        reached = graph.reachable({"a"})
        assert {"a", "b", "c"} <= reached
        assert "unrelated" not in reached

    def test_reachable_resolves_every_same_named_definition(self):
        graph = graph_of(
            "def go():\n    run()\n",
            "def run():\n    left()\n",
            "def run():\n    right()\n",
        )
        reached = graph.reachable({"go"})
        assert {"left", "right"} <= reached

    def test_reaches_call_is_the_reverse_closure(self):
        graph = graph_of(
            "def spawn():\n    Process()\n",
            "def restart():\n    spawn()\n",
            "def monitor():\n    restart()\n",
            "def bystander():\n    log()\n",
        )
        reaching = graph.reaches_call({"Process"})
        assert reaching == {"spawn", "restart", "monitor"}

    def test_method_calls_resolve_by_terminal_name(self):
        graph = graph_of(
            "class C:\n"
            "    def serve(self):\n"
            "        self._spawn()\n"
            "    def _spawn(self):\n"
            "        Process()\n"
        )
        assert "serve" in graph.reaches_call({"Process"})

    def test_nested_function_calls_attributed_to_inner_decl(self):
        graph = graph_of(
            "def outer():\n"
            "    def inner():\n"
            "        target()\n"
            "    return inner\n"
        )
        # outer's own call set does not contain target...
        assert "target" not in graph.calls_of("outer")
        # ...but inner is still a declaration that reaches it.
        assert "inner" in graph.reaches_call({"target"})
