"""Tests for the lint framework itself: findings, suppressions, scoping,
reporters, the runner's exit-code contract, and the unit algebra."""

import json
from pathlib import Path

import pytest

from repro.analysis import (
    EXIT_CLEAN,
    EXIT_FINDINGS,
    EXIT_USAGE,
    Finding,
    JSON_SCHEMA_VERSION,
    LintRunner,
    PathScope,
    RuleRegistry,
    Severity,
    SourceFile,
    Unit,
    UsageError,
    default_registry,
    infer_unit,
    render_json,
    render_text,
    run_lint,
    unit_of_name,
)

FIXTURES = Path(__file__).parent / "fixtures" / "lint"


# ---------------------------------------------------------------------------
# Findings and severities
# ---------------------------------------------------------------------------
class TestFinding:
    def test_severity_ordering_and_str(self):
        assert Severity.ERROR > Severity.WARNING > Severity.ADVICE
        assert str(Severity.WARNING) == "warning"

    def test_format_line(self):
        f = Finding("DET001", "msg", "a/b.py", 3, 7)
        assert f.format() == "a/b.py:3:7: DET001 [error] msg"

    def test_sort_key_orders_by_position(self):
        late = Finding("DET001", "m", "a.py", 9)
        early = Finding("UNIT001", "m", "a.py", 2)
        assert sorted([late, early], key=Finding.sort_key) == [early, late]

    def test_as_dict_schema(self):
        d = Finding("THR001", "msg", "p.py", 1, 0, Severity.WARNING).as_dict()
        assert d == {
            "rule": "THR001",
            "severity": "warning",
            "path": "p.py",
            "line": 1,
            "col": 0,
            "message": "msg",
        }


class TestPathScope:
    def test_include_substring(self):
        scope = PathScope(include=("accel/",))
        assert scope.contains("src/repro/accel/energy.py")
        assert not scope.contains("src/repro/serving/service.py")

    def test_exclude_wins(self):
        scope = PathScope(include=("serving/",), exclude=("serving/stats.py",))
        assert scope.contains("src/repro/serving/service.py")
        assert not scope.contains("src/repro/serving/stats.py")

    def test_basename_pattern(self):
        scope = PathScope(include=("ditile.py",))
        assert scope.contains("src/repro/ditile.py")
        assert not scope.contains("src/repro/ditile_extras.py")

    def test_empty_include_means_everything(self):
        assert PathScope().contains("anything/at/all.py")

    def test_segment_matching_not_prefix_matching(self):
        # "dist/" must match only a directory named exactly `dist`, not a
        # file or directory whose name merely starts with it.
        scope = PathScope(include=("dist/",))
        assert scope.contains("src/repro/dist/worker.py")
        assert not scope.contains("src/repro/distutils_helpers.py")
        assert not scope.contains("src/repro/distributed/worker.py")
        assert not scope.contains("src/repro/tools/dist")  # file, not dir

    def test_multi_segment_pattern_requires_consecutive_segments(self):
        scope = PathScope(include=("serving/stats.py",))
        assert scope.contains("src/repro/serving/stats.py")
        assert not scope.contains("src/repro/serving/other/stats.py")


class TestRegistry:
    def test_default_registry_rule_ids(self):
        ids = default_registry().ids()
        assert ids == [
            "DET001", "DET002", "DET003",
            "UNIT001", "UNIT002", "UNIT003",
            "THR001",
            "MP001", "MP002", "MP003", "MP004", "MP005",
            "DUR001",
        ]

    def test_duplicate_registration_rejected(self):
        registry = default_registry()
        with pytest.raises(ValueError, match="duplicate"):
            registry.register(registry.get("DET001"))

    def test_select_unknown_raises_keyerror(self):
        with pytest.raises(KeyError):
            default_registry().select(["NOPE999"])

    def test_empty_registry(self):
        registry = RuleRegistry()
        assert registry.ids() == []
        assert registry.file_rules() == []
        assert registry.project_rules() == []


# ---------------------------------------------------------------------------
# Suppression parsing
# ---------------------------------------------------------------------------
def _source(text: str) -> SourceFile:
    return SourceFile.from_text(text, display_path="core/x.py")


class TestSuppressions:
    def test_justified_suppression_parses(self):
        src = _source("x = 1  # repro: noqa[DET001] timing for the report\n")
        assert src.load_findings == []
        supp = src.suppressions[1]
        assert supp.rules == frozenset({"DET001"})
        assert supp.justification == "timing for the report"

    def test_multiple_rules_and_case_insensitivity(self):
        src = _source("x = 1  # REPRO: NOQA[det001, unit002] two at once\n")
        assert src.suppressions[1].rules == frozenset({"DET001", "UNIT002"})

    def test_missing_justification_is_noqa001(self):
        src = _source("x = 1  # repro: noqa[DET001]\n")
        assert [f.rule for f in src.load_findings] == ["NOQA001"]
        # The suppression still works; it is just reported.
        assert 1 in src.suppressions

    def test_bare_noqa_is_noqa002_and_does_not_suppress(self):
        src = _source("x = 1  # repro: noqa just because\n")
        assert [f.rule for f in src.load_findings] == ["NOQA002"]
        assert src.suppressions == {}

    def test_empty_bracket_is_noqa002(self):
        src = _source("x = 1  # repro: noqa[] huh\n")
        assert [f.rule for f in src.load_findings] == ["NOQA002"]

    def test_unused_suppression_is_noqa003_warning(self):
        src = _source("x = 1  # repro: noqa[UNIT001] nothing fires\n")
        unused = list(src.unused_suppressions({}))
        assert [f.rule for f in unused] == ["NOQA003"]
        assert unused[0].severity == Severity.WARNING

    def test_used_suppression_is_not_unused(self):
        src = _source("x = 1  # repro: noqa[UNIT001] fired below\n")
        assert list(src.unused_suppressions({1: {"UNIT001"}})) == []

    def test_suppresses_only_matching_rule_and_line(self):
        src = _source("x = 1  # repro: noqa[DET001] only this one\n")
        hit = Finding("DET001", "m", "core/x.py", 1)
        other_rule = Finding("DET002", "m", "core/x.py", 1)
        other_line = Finding("DET001", "m", "core/x.py", 2)
        assert src.suppresses(hit)
        assert not src.suppresses(other_rule)
        assert not src.suppresses(other_line)

    def test_syntax_error_is_parse001(self):
        src = _source("def broken(:\n")
        assert src.tree is None
        assert [f.rule for f in src.load_findings] == ["PARSE001"]


# ---------------------------------------------------------------------------
# Reporters
# ---------------------------------------------------------------------------
_FINDINGS = [
    Finding("UNIT001", "mixed units", "a.py", 3, 1),
    Finding("UNIT001", "mixed units", "a.py", 9, 0),
    Finding("NOQA003", "unused", "b.py", 2, 0, Severity.WARNING),
]


class TestReporters:
    def test_text_report_lines_and_summary(self):
        out = render_text(_FINDINGS, files_checked=4)
        lines = out.splitlines()
        assert lines[0] == "a.py:3:1: UNIT001 [error] mixed units"
        assert lines[-1] == "3 findings in 4 files (NOQA003 x1, UNIT001 x2)"

    def test_text_report_clean(self):
        assert render_text([], files_checked=7) == "clean: 7 files, 0 findings"

    def test_json_report_schema(self):
        payload = json.loads(render_json(_FINDINGS, files_checked=4))
        assert payload["version"] == JSON_SCHEMA_VERSION
        assert payload["files_checked"] == 4
        assert len(payload["findings"]) == 3
        assert payload["findings"][0]["rule"] == "UNIT001"
        assert set(payload["findings"][0]) == {
            "rule", "severity", "path", "line", "col", "message",
        }
        assert payload["summary"] == {
            "total": 3,
            "by_rule": {"NOQA003": 1, "UNIT001": 2},
            "by_severity": {"error": 2, "warning": 1},
        }

    def test_json_report_clean(self):
        payload = json.loads(render_json([], files_checked=0))
        assert payload["summary"]["total"] == 0
        assert payload["findings"] == []


# ---------------------------------------------------------------------------
# Runner: exit codes, selection, suppression filtering
# ---------------------------------------------------------------------------
class TestRunner:
    def test_exit_clean_on_good_fixture(self):
        report = run_lint([FIXTURES / "accel" / "good_units.py"])
        assert report.exit_code == EXIT_CLEAN

    def test_exit_findings_on_bad_fixture(self):
        report = run_lint([FIXTURES / "accel" / "bad_mixed_units.py"])
        assert report.exit_code == EXIT_FINDINGS

    def test_missing_path_is_usage_error(self):
        with pytest.raises(UsageError):
            run_lint([FIXTURES / "no" / "such" / "file.py"])

    def test_no_paths_is_usage_error(self):
        with pytest.raises(UsageError):
            run_lint([])

    def test_unknown_select_is_usage_error(self):
        with pytest.raises(UsageError, match="NOPE999"):
            LintRunner(select=["NOPE999"])

    def test_select_restricts_rules(self):
        report = LintRunner(select=["det002"]).run([FIXTURES])
        assert {f.rule for f in report.findings} <= {
            "DET002", "NOQA001", "NOQA002", "NOQA003", "PARSE001",
        }
        assert "DET002" in {f.rule for f in report.findings}

    def test_directory_run_counts_files(self):
        report = run_lint([FIXTURES / "accel"])
        assert report.files_checked == 3

    def test_suppression_filters_finding(self):
        src = SourceFile.from_text(
            "import time\n"
            "def f():\n"
            "    return time.time()  # repro: noqa[DET001] fixture timing\n",
            display_path="core/x.py",
        )
        report = LintRunner().run_sources([src])
        assert report.findings == []

    def test_unused_suppression_reporting_can_be_disabled(self):
        src = SourceFile.from_text(
            "x = 1  # repro: noqa[UNIT001] nothing fires here\n",
            display_path="core/x.py",
        )
        assert [
            f.rule for f in LintRunner().run_sources([src]).findings
        ] == ["NOQA003"]
        relaxed = LintRunner(report_unused_suppressions=False)
        assert relaxed.run_sources([src]).findings == []

    def test_rules_fired(self):
        report = run_lint([FIXTURES / "core"])
        assert report.rules_fired() == {"DET001", "DET002", "DET003"}


# ---------------------------------------------------------------------------
# Unit algebra
# ---------------------------------------------------------------------------
class TestUnitAlgebra:
    @pytest.mark.parametrize(
        "name, expected",
        [
            ("total_pj", Unit("pj")),
            ("energy_joules", Unit("joules")),
            ("compute_cycles", Unit("cycles")),
            ("buffer_bytes", Unit("bytes")),
            ("elapsed_s", Unit("seconds")),
            ("frequency_hz", Unit("cycles", "seconds")),
            ("bandwidth_bytes_per_cycle", Unit("bytes", "cycles")),
            ("JOULES_PER_PJ", Unit("joules", "pj")),
            ("_PJ", Unit("joules", "pj")),
            ("total_macs", Unit("macs")),
            ("plain_name", None),
            ("total_byte_hops", None),  # product quantity: outside algebra
        ],
    )
    def test_unit_of_name(self, name, expected):
        assert unit_of_name(name) == expected

    def test_lowercase_pj_suffix_is_picojoules_not_conversion(self):
        assert unit_of_name("sram_word_pj") == Unit("pj")

    @pytest.mark.parametrize(
        "expr, expected",
        [
            ("n_bytes + extra_bytes", Unit("bytes")),
            ("total_pj * JOULES_PER_PJ", Unit("joules")),
            ("total_cycles / clock_hz", Unit("seconds")),
            ("elapsed_seconds * clock_hz", Unit("cycles")),
            ("num_macs * pj_per_mac", Unit("pj")),
            ("n_bytes / bandwidth_bytes_per_cycle", Unit("cycles")),
            ("sum(x.n_bytes for x in xs)", Unit("bytes")),
            ("max(a_cycles, b_cycles)", Unit("cycles")),
            ("-overhead_cycles", Unit("cycles")),
            ("n_bytes * n_cycles", None),  # compound product: unknown
            ("plain * also_plain", None),
        ],
    )
    def test_infer_unit(self, expr, expected):
        import ast

        node = ast.parse(expr, mode="eval").body
        assert infer_unit(node) == expected
