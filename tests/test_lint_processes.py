"""Fixture-driven and in-memory tests for the MP001–MP005 process-safety
rules, which all run on the shared CFG/dataflow/call-graph engine."""

from pathlib import Path

import pytest

from repro.analysis import LintRunner, SourceFile, run_lint

FIXTURES = Path(__file__).parent / "fixtures" / "lint"


def lint_fixture(relpath: str):
    return run_lint([FIXTURES / relpath])


def lint_text(text: str, display_path: str = "dist/module.py"):
    source = SourceFile.from_text(text, display_path=display_path)
    return LintRunner().run_sources([source])


def fired(report):
    return sorted(f.rule for f in report.findings)


# ---------------------------------------------------------------------------
# Acceptance fixtures
# ---------------------------------------------------------------------------
class TestFixtures:
    @pytest.mark.parametrize(
        "relpath, expected",
        [
            ("dist/bad_fork_after_threads.py", ["MP001"]),
            ("dist/bad_shmem_leak.py", ["MP002"] * 4),
            ("dist/bad_unbounded_queue.py", ["MP003"] * 2),
            ("dist/bad_unsafe_message.py", ["MP004"] * 2),
            ("dist/bad_untagged_message.py", ["MP005"]),
        ],
    )
    def test_bad_fixture_fires_exactly_its_rule(self, relpath, expected):
        report = lint_fixture(relpath)
        assert fired(report) == expected
        assert report.exit_code == 1

    @pytest.mark.parametrize(
        "relpath",
        [
            "dist/good_fork_before_threads.py",
            "dist/good_shmem_lifecycle.py",
            "dist/good_bounded_queue.py",
            "dist/good_safe_message.py",
            "dist/good_tagged_message.py",
        ],
    )
    def test_good_fixture_is_clean(self, relpath):
        report = lint_fixture(relpath)
        assert report.findings == []
        assert report.exit_code == 0

    def test_seeded_shmem_bugs_detected_at_creation_lines(self):
        """The write_segment-skips-unlink seedings anchor deterministically."""
        report = lint_fixture("dist/bad_shmem_leak.py")
        lines = sorted(f.line for f in report.findings)
        assert lines == [13, 21, 31, 31]


# ---------------------------------------------------------------------------
# MP001 — fork after thread creation
# ---------------------------------------------------------------------------
class TestForkAfterThreads:
    def test_fork_reached_transitively_is_flagged(self):
        report = lint_text(
            "import multiprocessing\n"
            "import threading\n"
            "\n"
            "def _spawn(shard):\n"
            "    proc = multiprocessing.Process(target=shard)\n"
            "    proc.start()\n"
            "\n"
            "def serve(shards):\n"
            "    watcher = threading.Thread(target=print)\n"
            "    watcher.start()\n"
            "    for shard in shards:\n"
            "        _spawn(shard)\n"
        )
        assert fired(report) == ["MP001"]

    def test_fork_before_thread_on_every_path_is_clean(self):
        report = lint_text(
            "import multiprocessing\n"
            "import threading\n"
            "\n"
            "def serve(shard):\n"
            "    proc = multiprocessing.Process(target=shard)\n"
            "    proc.start()\n"
            "    watcher = threading.Thread(target=print)\n"
            "    watcher.start()\n"
        )
        assert report.findings == []

    def test_thread_on_one_branch_only_still_flags(self):
        # The join over branches is may-analysis: any path with a live
        # thread pool before the fork is unsafe.
        report = lint_text(
            "import multiprocessing\n"
            "import threading\n"
            "\n"
            "def serve(shard, watch):\n"
            "    if watch:\n"
            "        threading.Thread(target=print).start()\n"
            "    multiprocessing.Process(target=shard).start()\n"
        )
        assert fired(report) == ["MP001"]

    def test_outside_process_scope_is_ignored(self):
        report = lint_text(
            "import multiprocessing\n"
            "import threading\n"
            "\n"
            "def serve(shard):\n"
            "    threading.Thread(target=print).start()\n"
            "    multiprocessing.Process(target=shard).start()\n",
            display_path="accel/kernels.py",
        )
        assert report.findings == []


# ---------------------------------------------------------------------------
# MP002 — shared-memory segment lifecycle
# ---------------------------------------------------------------------------
class TestShmemLifecycle:
    def test_close_then_unlink_in_finally_is_clean(self):
        report = lint_text(
            "from multiprocessing import shared_memory\n"
            "\n"
            "def roundtrip(name, size):\n"
            "    shm = shared_memory.SharedMemory(name=name, create=True, size=size)\n"
            "    try:\n"
            "        shm.buf[0] = 1\n"
            "    finally:\n"
            "        shm.close()\n"
            "        shm.unlink()\n"
        )
        assert report.findings == []

    def test_returning_the_segment_is_a_handoff(self):
        report = lint_text(
            "from multiprocessing import shared_memory\n"
            "\n"
            "def make(name, size):\n"
            "    shm = shared_memory.SharedMemory(name=name, create=True, size=size)\n"
            "    return shm\n"
        )
        assert report.findings == []

    def test_passing_to_a_callee_is_an_escape(self):
        report = lint_text(
            "from multiprocessing import shared_memory\n"
            "\n"
            "def make(name, size, registry):\n"
            "    shm = shared_memory.SharedMemory(name=name, create=True, size=size)\n"
            "    registry.track(shm)\n"
        )
        assert report.findings == []

    def test_attribute_reads_are_not_escapes(self):
        report = lint_text(
            "from multiprocessing import shared_memory\n"
            "\n"
            "def leak(name, size, log):\n"
            "    shm = shared_memory.SharedMemory(name=name, create=True, size=size)\n"
            "    log.info(shm.name)\n"
        )
        assert fired(report) == ["MP002"]

    def test_attach_side_open_is_not_tracked(self):
        report = lint_text(
            "from multiprocessing import shared_memory\n"
            "\n"
            "def read(name):\n"
            "    shm = shared_memory.SharedMemory(name=name)\n"
            "    return bytes(shm.buf)\n"
        )
        assert report.findings == []

    def test_close_without_unlink_on_raise_path_is_accepted(self):
        # Exceptional exits only require close(); unlink responsibility
        # may rest with the coordinator.  A catch-all handler guarantees
        # the close on every raising path.
        report = lint_text(
            "from multiprocessing import shared_memory\n"
            "\n"
            "def fill(name, size, payload):\n"
            "    shm = shared_memory.SharedMemory(name=name, create=True, size=size)\n"
            "    try:\n"
            "        shm.buf[: len(payload)] = payload\n"
            "    except BaseException:\n"
            "        shm.close()\n"
            "        raise\n"
            "    shm.close()\n"
            "    shm.unlink()\n"
        )
        assert report.findings == []

    def test_narrow_except_does_not_guarantee_the_close(self):
        # ``except ValueError`` lets any other exception escape with the
        # segment still open, so the exceptional path is still flagged.
        report = lint_text(
            "from multiprocessing import shared_memory\n"
            "\n"
            "def fill(name, size, payload):\n"
            "    shm = shared_memory.SharedMemory(name=name, create=True, size=size)\n"
            "    try:\n"
            "        shm.buf[: len(payload)] = payload\n"
            "    except ValueError:\n"
            "        shm.close()\n"
            "        raise\n"
            "    shm.close()\n"
            "    shm.unlink()\n"
        )
        assert fired(report) == ["MP002"]


# ---------------------------------------------------------------------------
# MP003 — queue discipline
# ---------------------------------------------------------------------------
class TestQueueDiscipline:
    def test_zero_maxsize_is_unbounded(self):
        report = lint_text(
            "import multiprocessing\n"
            "\n"
            "def make(ctx):\n"
            "    return ctx.Queue(maxsize=0)\n"
        )
        assert fired(report) == ["MP003"]

    def test_simple_queue_is_always_flagged(self):
        report = lint_text(
            "import multiprocessing\n"
            "\n"
            "def make(ctx):\n"
            "    return ctx.SimpleQueue()\n"
        )
        assert fired(report) == ["MP003"]

    def test_get_with_block_false_is_clean(self):
        report = lint_text(
            "def drain(q):\n    return q.get(block=False)\n"
        )
        assert report.findings == []

    def test_get_nowait_is_clean(self):
        report = lint_text(
            "def drain(q):\n    return q.get_nowait()\n"
        )
        assert report.findings == []


# ---------------------------------------------------------------------------
# MP004 — message picklability / ordering
# ---------------------------------------------------------------------------
class TestMessagePicklability:
    def test_set_literal_put_directly_is_flagged(self):
        report = lint_text(
            "def send(q, a, b):\n    q.put({a, b})\n"
        )
        assert fired(report) == ["MP004"]

    def test_put_nowait_is_also_checked(self):
        report = lint_text(
            "def send(q, items):\n    q.put_nowait(set(items))\n"
        )
        assert fired(report) == ["MP004"]

    def test_message_constructor_args_are_checked(self):
        report = lint_text(
            "import threading\n"
            "\n"
            "def build(done):\n"
            "    return WindowDoneMessage(guard=threading.Lock(), done=done)\n"
        )
        assert fired(report) == ["MP004"]

    def test_sorted_set_is_clean(self):
        report = lint_text(
            "def send(q, items):\n"
            "    pending = set(items)\n"
            "    q.put(sorted(pending))\n"
        )
        assert report.findings == []

    def test_rebinding_to_safe_value_clears_taint(self):
        report = lint_text(
            "def send(q, items):\n"
            "    payload = set(items)\n"
            "    payload = sorted(items)\n"
            "    q.put(payload)\n"
        )
        assert report.findings == []


# ---------------------------------------------------------------------------
# MP005 — generation tags on message classes
# ---------------------------------------------------------------------------
class TestGenerationTag:
    def test_annotated_field_satisfies_the_rule(self):
        report = lint_text(
            "from dataclasses import dataclass\n"
            "\n"
            "@dataclass\n"
            "class StatsMessage:\n"
            "    generation: int\n"
            "    total: float\n"
        )
        assert report.findings == []

    def test_inherited_field_from_same_module_base(self):
        report = lint_text(
            "class Base:\n"
            "    generation: int\n"
            "\n"
            "class ResultMessage(Base):\n"
            "    value: float\n"
        )
        assert report.findings == []

    def test_non_message_class_is_ignored(self):
        report = lint_text(
            "class WindowPlanner:\n"
            "    horizon: int\n"
        )
        assert report.findings == []

    def test_missing_tag_is_flagged(self):
        report = lint_text(
            "class AckMessage:\n"
            "    shard: int\n"
        )
        assert fired(report) == ["MP005"]


# ---------------------------------------------------------------------------
# Suppression integration
# ---------------------------------------------------------------------------
class TestSuppression:
    def test_justified_noqa_suppresses_mp001(self):
        report = lint_text(
            "import multiprocessing\n"
            "import threading\n"
            "\n"
            "def serve(shard):\n"
            "    threading.Thread(target=print).start()\n"
            "    multiprocessing.Process(target=shard).start()"
            "  # repro: noqa[MP001] child re-execs from a clean entry point\n"
        )
        assert report.findings == []
