"""Fixture-driven tests for the lint rules (DET/UNIT/THR families).

Each ``tests/fixtures/lint/<scope>/bad_*.py`` file is broken in exactly
one way and must trigger exactly its rule; each ``good_*.py`` counterpart
must come back clean.  The in-memory cases then probe the edges of every
rule (alias resolution, seeding variants, set-derived dicts, unit
algebra, lock detection) without touching the disk.
"""

from pathlib import Path

import pytest

from repro.analysis import LintRunner, SourceFile, run_lint

FIXTURES = Path(__file__).parent / "fixtures" / "lint"


def lint_fixture(relpath: str):
    return run_lint([FIXTURES / relpath])


def lint_text(text: str, display_path: str):
    """Lint one in-memory module under a synthetic (scope-bearing) path."""
    source = SourceFile.from_text(text, display_path=display_path)
    return LintRunner().run_sources([source])


def fired(report):
    return sorted(f.rule for f in report.findings)


# ---------------------------------------------------------------------------
# Acceptance fixtures: one rule each, exactly
# ---------------------------------------------------------------------------
class TestFixtures:
    @pytest.mark.parametrize(
        "relpath, rule",
        [
            ("accel/bad_mixed_units.py", "UNIT001"),
            ("accel/bad_dropped_conversion.py", "UNIT002"),
            ("core/bad_unseeded_rng.py", "DET002"),
            ("core/bad_wall_clock.py", "DET001"),
            ("core/bad_set_accumulation.py", "DET003"),
            ("serving/bad_unlocked.py", "THR001"),
            ("durability/bad_checkpoint_write.py", "DUR001"),
        ],
    )
    def test_bad_fixture_triggers_exactly_its_rule(self, relpath, rule):
        report = lint_fixture(relpath)
        assert fired(report) == [rule]
        assert report.exit_code == 1

    @pytest.mark.parametrize(
        "relpath",
        [
            "accel/good_units.py",
            "core/good_seeded_rng.py",
            "serving/good_locked.py",
            "durability/good_checkpoint_write.py",
            "suppress/core/justified.py",
        ],
    )
    def test_good_fixture_is_clean(self, relpath):
        report = lint_fixture(relpath)
        assert report.findings == []
        assert report.exit_code == 0

    def test_malformed_suppressions_fixture(self):
        report = lint_fixture("suppress/core/malformed.py")
        assert fired(report) == ["DET001", "NOQA001", "NOQA002", "NOQA003"]


# ---------------------------------------------------------------------------
# DET001 — wall-clock reads
# ---------------------------------------------------------------------------
class TestWallClock:
    def test_aliased_import_is_resolved(self):
        report = lint_text(
            "import time as _t\n\ndef f():\n    return _t.monotonic()\n",
            "core/plan.py",
        )
        assert fired(report) == ["DET001"]

    def test_from_import_is_resolved(self):
        report = lint_text(
            "from time import perf_counter\n\ndef f():\n"
            "    return perf_counter()\n",
            "serving/executor.py",
        )
        assert fired(report) == ["DET001"]

    def test_datetime_now(self):
        report = lint_text(
            "import datetime\n\ndef f():\n"
            "    return datetime.datetime.now()\n",
            "core/plan.py",
        )
        assert fired(report) == ["DET001"]

    def test_stats_module_is_exempt(self):
        report = lint_text(
            "import time\n\ndef f():\n    return time.perf_counter()\n",
            "serving/stats.py",
        )
        assert report.findings == []

    def test_out_of_scope_path_is_exempt(self):
        report = lint_text(
            "import time\n\ndef f():\n    return time.time()\n",
            "scripts/bench.py",
        )
        assert report.findings == []


# ---------------------------------------------------------------------------
# DET002 — unseeded randomness
# ---------------------------------------------------------------------------
class TestUnseededRandom:
    def test_default_rng_with_positional_seed_is_clean(self):
        report = lint_text(
            "import numpy as np\nrng = np.random.default_rng(7)\n",
            "core/plan.py",
        )
        assert report.findings == []

    def test_default_rng_seed_keyword_none_is_flagged(self):
        report = lint_text(
            "import numpy as np\nrng = np.random.default_rng(seed=None)\n",
            "core/plan.py",
        )
        assert fired(report) == ["DET002"]

    def test_legacy_numpy_global_generator(self):
        report = lint_text(
            "import numpy as np\nx = np.random.rand(3)\n",
            "graphs/make.py",
        )
        assert fired(report) == ["DET002"]

    def test_stdlib_random(self):
        report = lint_text(
            "import random\nx = random.random()\n",
            "baselines/race.py",
        )
        assert fired(report) == ["DET002"]

    def test_instance_method_named_like_random_is_clean(self):
        report = lint_text(
            "def f(rng):\n    return rng.random()\n",
            "core/plan.py",
        )
        assert report.findings == []


# ---------------------------------------------------------------------------
# DET003 — order-sensitive accumulation
# ---------------------------------------------------------------------------
class TestUnorderedAccumulation:
    def test_sum_over_set_comprehension_source(self):
        report = lint_text(
            "def f(xs):\n"
            "    uniq = {x for x in xs}\n"
            "    return sum(w * 0.5 for w in uniq)\n",
            "core/balance.py",
        )
        assert fired(report) == ["DET003"]

    def test_join_over_set(self):
        report = lint_text(
            "def f(names):\n"
            "    pending = set(names)\n"
            "    return ','.join(pending)\n",
            "serving/ingest.py",
        )
        assert fired(report) == ["DET003"]

    def test_values_of_set_derived_dict(self):
        report = lint_text(
            "def f(keys):\n"
            "    live = set(keys)\n"
            "    table = {k: 0.0 for k in live}\n"
            "    return sum(table.values())\n",
            "core/balance.py",
        )
        assert fired(report) == ["DET003"]

    def test_dict_literal_values_are_ordered(self):
        report = lint_text(
            "def f(a, b):\n"
            "    table = {'a': a, 'b': b}\n"
            "    return sum(table.values())\n",
            "core/balance.py",
        )
        assert report.findings == []

    def test_sorted_rebinding_clears_the_taint(self):
        report = lint_text(
            "def f(xs):\n"
            "    uniq = set(xs)\n"
            "    uniq = sorted(uniq)\n"
            "    total = 0.0\n"
            "    for x in uniq:\n"
            "        total += x\n"
            "    return total\n",
            "core/balance.py",
        )
        assert report.findings == []

    def test_loop_without_accumulation_is_clean(self):
        report = lint_text(
            "def f(xs, table):\n"
            "    uniq = set(xs)\n"
            "    for x in uniq:\n"
            "        table[x] = 0\n",
            "core/balance.py",
        )
        assert report.findings == []

    def test_fsum_is_not_flagged(self):
        report = lint_text(
            "import math\n"
            "def f(xs):\n"
            "    uniq = set(xs)\n"
            "    return math.fsum(uniq)\n",
            "core/balance.py",
        )
        assert report.findings == []


# ---------------------------------------------------------------------------
# UNIT001-UNIT003 — unit consistency
# ---------------------------------------------------------------------------
class TestUnits:
    def test_cycles_compared_to_seconds(self):
        report = lint_text(
            "def f(compute_cycles, budget_seconds):\n"
            "    return compute_cycles < budget_seconds\n",
            "accel/pipeline.py",
        )
        assert fired(report) == ["UNIT001"]

    def test_cycles_over_hz_is_seconds(self):
        report = lint_text(
            "def latency_seconds(total_cycles, clock_hz):\n"
            "    return total_cycles / clock_hz\n",
            "accel/pipeline.py",
        )
        assert report.findings == []

    def test_augmented_add_mixing_units(self):
        report = lint_text(
            "def f(total_pj, extra_joules):\n"
            "    total_pj += extra_joules\n"
            "    return total_pj\n",
            "accel/energy2.py",
        )
        assert fired(report) == ["UNIT001"]

    def test_per_ratio_cancellation(self):
        report = lint_text(
            "def traffic_bytes(num_edges, bytes_per_edge):\n"
            "    total_edges = num_edges\n"
            "    return total_edges * bytes_per_edge\n",
            "accel/dram.py",
        )
        assert report.findings == []

    def test_return_unit_mismatch(self):
        report = lint_text(
            "def transfer_cycles(window_seconds):\n"
            "    return window_seconds\n",
            "accel/noc2.py",
        )
        assert fired(report) == ["UNIT003"]

    def test_conversion_through_named_constant(self):
        report = lint_text(
            "JOULES_PER_PJ = 1e-12\n"
            "def f(total_pj):\n"
            "    total_joules = total_pj * JOULES_PER_PJ\n"
            "    return total_joules\n",
            "accel/energy2.py",
        )
        assert report.findings == []

    def test_out_of_scope_path_is_exempt(self):
        report = lint_text(
            "def f(a_pj, b_joules):\n    return a_pj + b_joules\n",
            "serving/service.py",
        )
        assert report.findings == []


# ---------------------------------------------------------------------------
# THR001 — unlocked cross-thread mutation
# ---------------------------------------------------------------------------
_THREADED = """
import threading

class Sink:
    def __init__(self):
        self._lock = threading.Lock()
        self.items = []
        self._t = threading.Thread(target=self._run)

    def _run(self):
        {run_body}

    def publish(self, item):
        {publish_body}
"""


def _threaded(run_body: str, publish_body: str):
    text = _THREADED.format(run_body=run_body, publish_body=publish_body)
    return lint_text(text, "serving/sink.py")


class TestThreadSafety:
    def test_unlocked_cross_thread_mutation(self):
        report = _threaded(
            "self.items.append(1)", "self.items.append(2)"
        )
        assert fired(report) == ["THR001"]
        assert "Sink.items" in report.findings[0].message

    def test_locked_thread_side_write_is_clean(self):
        report = _threaded(
            "with self._lock:\n            self.items.append(1)",
            "with self._lock:\n            self.items.append(2)",
        )
        assert report.findings == []

    def test_single_writer_method_is_exempt(self):
        report = _threaded("self.items.append(1)", "return len(self.items)")
        assert report.findings == []

    def test_executor_submit_counts_as_thread_root(self):
        report = lint_text(
            "class Pool:\n"
            "    def __init__(self, executor):\n"
            "        self.done = []\n"
            "        self._executor = executor\n"
            "    def kick(self):\n"
            "        self._executor.submit(self._work)\n"
            "    def _work(self):\n"
            "        self.done.append(1)\n"
            "    def flush(self):\n"
            "        self.done.clear()\n",
            "serving/pool.py",
        )
        assert fired(report) == ["THR001"]

    def test_mutation_unreachable_from_threads_is_clean(self):
        report = lint_text(
            "class Plain:\n"
            "    def __init__(self):\n"
            "        self.items = []\n"
            "    def a(self):\n"
            "        self.items.append(1)\n"
            "    def b(self):\n"
            "        self.items.append(2)\n",
            "serving/plain.py",
        )
        assert report.findings == []


# ---------------------------------------------------------------------------
# DUR001 — fsync-then-rename publication
# ---------------------------------------------------------------------------
class TestAtomicPublish:
    def test_in_place_write_fires(self):
        report = lint_text(
            'def save(path, blob):\n'
            '    with open(path, "wb") as fh:\n'
            "        fh.write(blob)\n",
            "durability/store.py",
        )
        assert fired(report) == ["DUR001"]
        assert "os.replace" in report.findings[0].message

    def test_rename_without_fsync_fires(self):
        report = lint_text(
            "import os\n\n"
            "def save(path, blob):\n"
            '    with open(path + ".tmp", "wb") as fh:\n'
            "        fh.write(blob)\n"
            '    os.replace(path + ".tmp", path)\n',
            "durability/store.py",
        )
        assert fired(report) == ["DUR001"]
        assert "fsync" in report.findings[0].message

    def test_full_protocol_is_clean(self):
        report = lint_text(
            "import os\n\n"
            "def save(path, blob):\n"
            '    with open(path + ".tmp", "wb") as fh:\n'
            "        fh.write(blob)\n"
            "        fh.flush()\n"
            "        os.fsync(fh.fileno())\n"
            '    os.replace(path + ".tmp", path)\n',
            "durability/store.py",
        )
        assert report.findings == []

    def test_append_and_read_modes_are_exempt(self):
        report = lint_text(
            'def tail(path, record):\n'
            '    with open(path, "ab") as fh:\n'
            "        fh.write(record)\n"
            '    with open(path, "rb") as fh:\n'
            "        return fh.read()\n",
            "durability/segment.py",
        )
        assert report.findings == []

    def test_path_open_method_is_matched(self):
        report = lint_text(
            "def save(path, blob):\n"
            '    with path.open("wb") as fh:\n'
            "        fh.write(blob)\n",
            "durability/store.py",
        )
        assert fired(report) == ["DUR001"]

    def test_keyword_mode_is_matched(self):
        report = lint_text(
            "def save(path, blob):\n"
            '    with open(path, mode="w") as fh:\n'
            "        fh.write(blob)\n",
            "durability/store.py",
        )
        assert fired(report) == ["DUR001"]

    def test_out_of_scope_path_is_exempt(self):
        report = lint_text(
            'def save(path, blob):\n'
            '    with open(path, "wb") as fh:\n'
            "        fh.write(blob)\n",
            "serving/store.py",
        )
        assert report.findings == []
