"""The repo's own tree must pass its own lint suite.

This is the check CI runs (``repro lint src/repro``); keeping it in the
tier-1 suite means a determinism/unit/thread regression fails fast in
local runs too, with the offending findings in the assertion message.
"""

from pathlib import Path

from repro.analysis import run_lint

SRC = Path(__file__).parent.parent / "src" / "repro"


def test_source_tree_exists():
    assert (SRC / "analysis").is_dir()


def test_src_repro_lints_clean():
    report = run_lint([SRC])
    rendered = "\n".join(f.format() for f in report.findings)
    assert report.findings == [], f"lint findings in src/repro:\n{rendered}"
    assert report.exit_code == 0
    assert report.files_checked > 50  # the whole package, not a subset


def test_every_suppression_in_tree_is_justified():
    """Belt and braces: NOQA001 findings would also fail the clean run."""
    from repro.analysis import SourceFile, iter_python_files

    for path in iter_python_files([SRC]):
        source = SourceFile.load(path)
        for suppression in source.suppressions.values():
            assert suppression.justification, (
                f"{path}:{suppression.line}: suppression without justification"
            )
