"""Edge-case tests for metrics, report internals, and figure helpers."""

import numpy as np
import pytest

from repro.accel.dram import DRAMTraffic
from repro.accel.energy import EnergyBreakdown
from repro.accel.metrics import (
    CostSummary,
    CycleBreakdown,
    SimulationResult,
    SnapshotCosts,
)
from repro.experiments.figures import _average_quantities
from repro.baselines.algorithms import SnapshotQuantities


def _result(cycles=100.0, energy=1.0, macs=10.0):
    return SimulationResult(
        accelerator="x",
        algorithm="y",
        cycles=CycleBreakdown(total=cycles),
        energy=EnergyBreakdown(computation=energy),
        total_macs=macs,
        dram_bytes=0.0,
        noc_bytes=0.0,
        noc_byte_hops=0.0,
        pe_utilization=0.5,
        frequency_hz=700e6,
    )


class TestSimulationResultEdges:
    def test_zero_cycle_speedup_is_infinite(self):
        zero = _result(cycles=0.0)
        other = _result(cycles=100.0)
        assert zero.speedup_over(other) == float("inf")

    def test_zero_energy_ratio_is_infinite(self):
        zero = _result(energy=0.0)
        zero.energy.computation = 0.0
        other = _result(energy=5.0)
        assert zero.energy_ratio_over(other) == float("inf")

    def test_execution_seconds(self):
        result = _result(cycles=700e6)
        assert result.execution_seconds == pytest.approx(1.0)


class TestCostSummaryEdges:
    def test_empty_summary(self):
        costs = CostSummary("none", [])
        assert costs.total_macs == 0
        assert costs.dram_bytes == 0
        assert costs.noc_bytes == 0

    def test_snapshot_costs_accessors(self):
        snap = SnapshotCosts(
            0, gnn_aggregation_macs=3, gnn_combination_macs=4, rnn_macs=5,
            dram=DRAMTraffic(streaming_read=7),
        )
        assert snap.gnn_macs == 7
        assert snap.total_macs == 12
        assert snap.dram.total_bytes == 7


class TestAverageQuantities:
    def test_smoothing_preserves_count_and_averages(self):
        quantities = [
            SnapshotQuantities(0, 100, 500, 1.0, 500, 0),
            SnapshotQuantities(1, 100, 510, 0.1, 30, 20),
            SnapshotQuantities(2, 100, 490, 0.3, 10, 30),
        ]
        smoothed = _average_quantities(quantities)
        assert len(smoothed) == 3
        assert smoothed[0].dissimilarity == 1.0  # cold start stays cold
        assert smoothed[1].dissimilarity == pytest.approx(0.2)
        assert smoothed[1].edges == smoothed[2].edges  # uniform assumption

    def test_single_snapshot_passthrough(self):
        quantities = [SnapshotQuantities(0, 10, 20, 1.0, 20, 0)]
        assert _average_quantities(quantities) is quantities


class TestEnergyBreakdownEdges:
    def test_negative_free_total(self):
        breakdown = EnergyBreakdown()
        assert breakdown.total == 0.0
        assert breakdown.control_fraction() == 0.0
