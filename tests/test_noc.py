"""Unit tests for repro.accel.noc (topologies + transfer model)."""

from dataclasses import replace

import pytest

from repro.accel.config import HardwareConfig, NoCConfig
from repro.accel.noc import NoCModel, NoCTraffic, mesh_hops, ring_hops


def _hw(topology, relink=True, rows=4, cols=4):
    hw = HardwareConfig(grid_rows=rows, grid_cols=cols)
    return replace(hw, noc=NoCConfig(topology=topology, relink_enabled=relink))


class TestHopHelpers:
    def test_ring_hops_wraps(self):
        assert ring_hops(8, 0, 1) == 1
        assert ring_hops(8, 0, 7) == 1
        assert ring_hops(8, 0, 4) == 4

    def test_ring_rejects_bad_size(self):
        with pytest.raises(ValueError):
            ring_hops(0, 0, 0)

    def test_mesh_hops_manhattan(self):
        assert mesh_hops(4, 4, 0, 5) == 2  # (0,0) -> (1,1)
        assert mesh_hops(4, 4, 0, 15) == 6  # (0,0) -> (3,3)


class TestNoCTraffic:
    def test_total_and_classes(self):
        traffic = NoCTraffic(10, 20, 30)
        assert traffic.total_bytes == 60
        names = {c.name: c.regular for c in traffic.classes()}
        assert names == {"temporal": True, "reuse": True, "spatial": False}

    def test_add(self):
        a = NoCTraffic(temporal_bytes=5)
        a.add(NoCTraffic(spatial_bytes=7))
        assert a.total_bytes == 12


class TestTopologyStructure:
    def test_ditile_regular_is_single_hop(self):
        model = NoCModel(_hw("ditile"))
        assert model.avg_hops(regular=True) == 1.0
        assert model.avg_hops(regular=False) == 2.0  # Re-Link bypass

    def test_ditile_without_relink_is_slower_vertically(self):
        with_relink = NoCModel(_hw("ditile", relink=True))
        without = NoCModel(_hw("ditile", relink=False, rows=16))
        assert without.avg_hops(regular=False) > with_relink.avg_hops(
            regular=False
        )

    def test_mesh_hops_grow_with_size(self):
        small = NoCModel(_hw("mesh", rows=4, cols=4))
        large = NoCModel(_hw("mesh", rows=16, cols=16))
        assert large.avg_hops(regular=False) > small.avg_hops(regular=False)

    def test_crossbar_single_hop_many_paths(self):
        model = NoCModel(_hw("crossbar"))
        assert model.avg_hops(regular=False) == 1.0
        assert model.parallel_paths(regular=False) == 16.0

    def test_crossbar_arbitration_latency_grows(self):
        small = NoCModel(_hw("crossbar", rows=2, cols=2))
        large = NoCModel(_hw("crossbar", rows=16, cols=16))
        assert large.router_latency() > small.router_latency()

    def test_describe_keys(self):
        summary = NoCModel(_hw("ditile")).describe()
        assert {"regular_hops", "irregular_hops", "regular_paths",
                "irregular_paths", "router_latency"} == set(summary)


class TestTransferCycles:
    def test_zero_traffic_fast(self):
        model = NoCModel(_hw("ditile"))
        assert model.transfer_cycles(NoCTraffic()) == 0.0

    def test_ditile_overlaps_regular_and_irregular(self):
        model = NoCModel(_hw("ditile"))
        regular_only = model.transfer_cycles(NoCTraffic(temporal_bytes=1 << 20))
        spatial_only = model.transfer_cycles(NoCTraffic(spatial_bytes=1 << 20))
        both = model.transfer_cycles(
            NoCTraffic(temporal_bytes=1 << 20, spatial_bytes=1 << 20)
        )
        # Disjoint link sets: the combination costs the max, not the sum.
        assert both == pytest.approx(max(regular_only, spatial_only))

    def test_mesh_serializes_classes(self):
        model = NoCModel(_hw("mesh"))
        temporal = model.transfer_cycles(NoCTraffic(temporal_bytes=1 << 20))
        spatial = model.transfer_cycles(NoCTraffic(spatial_bytes=1 << 20))
        both = model.transfer_cycles(
            NoCTraffic(temporal_bytes=1 << 20, spatial_bytes=1 << 20)
        )
        assert both == pytest.approx(temporal + spatial)

    def test_ditile_beats_mesh_on_spatial_traffic(self):
        traffic = NoCTraffic(spatial_bytes=1 << 22)
        ditile = NoCModel(_hw("ditile")).transfer_cycles(traffic)
        mesh = NoCModel(_hw("mesh")).transfer_cycles(traffic)
        assert ditile < mesh

    def test_byte_hops_weight_by_distance(self):
        model = NoCModel(_hw("ditile"))
        regular = model.byte_hops(NoCTraffic(temporal_bytes=1000))
        irregular = model.byte_hops(NoCTraffic(spatial_bytes=1000))
        assert regular == pytest.approx(1000.0)
        assert irregular == pytest.approx(2000.0)

    def test_unknown_topology_rejected_at_config(self):
        with pytest.raises(ValueError):
            NoCConfig(topology="bogus")
