"""Unit tests for the repro.obs tracing/metrics/export/report stack."""

import json
import threading

import pytest

from repro.obs import (
    NOOP_SPAN,
    MetricsRegistry,
    Tracer,
    active_tracer,
    build_phase_report,
    chrome_trace_events,
    counter_add,
    gauge_set,
    install,
    span,
    tracing,
    tracing_enabled,
    uninstall,
    validate_trace_events,
    validate_trace_file,
    write_chrome_trace,
    write_span_jsonl,
)
from repro.obs.session import TraceSession, export_all
from repro.obs.span import span_paths


class TestGlobalSwitch:
    def test_disabled_by_default(self):
        assert active_tracer() is None
        assert not tracing_enabled()

    def test_span_returns_shared_noop_when_off(self):
        assert span("anything", attr=1) is NOOP_SPAN
        assert not NOOP_SPAN.enabled

    def test_noop_span_absorbs_everything(self):
        with span("phase") as sp:
            sp.set_attr("k", "v")
            sp.add("cycles", 10.0)
        assert sp is NOOP_SPAN

    def test_counter_and_gauge_are_noops_when_off(self):
        counter_add("c", 1.0)  # must not raise
        gauge_set("g", 2.0)

    def test_install_uninstall_roundtrip(self):
        tracer = install(Tracer("t"))
        try:
            assert tracing_enabled()
            assert active_tracer() is tracer
        finally:
            assert uninstall() is tracer
        assert not tracing_enabled()

    def test_double_install_rejected(self):
        install(Tracer("first"))
        try:
            with pytest.raises(RuntimeError, match="already installed"):
                install(Tracer("second"))
        finally:
            uninstall()

    def test_tracing_context_manager_uninstalls_on_error(self):
        with pytest.raises(ValueError):
            with tracing():
                raise ValueError("boom")
        assert not tracing_enabled()


class TestSpans:
    def test_nesting_and_parenting(self):
        with tracing() as tracer:
            with span("outer"):
                with span("inner"):
                    pass
                with span("inner"):
                    pass
        records = tracer.records
        assert [r.name for r in records] == ["outer", "inner", "inner"]
        outer = tracer.find("outer")[0]
        for inner in tracer.find("inner"):
            assert inner.parent_id == outer.span_id
            assert inner.depth == 1
        assert outer.parent_id is None and outer.depth == 0

    def test_attrs_and_counters_accumulate(self):
        with tracing() as tracer:
            with span("phase", alpha=2, dataset="pubmed") as sp:
                sp.add("cycles", 5.0)
                sp.add("cycles", 7.0)
                sp.set_attr("Ps", 4)
        (rec,) = tracer.records
        assert rec.attrs == {"alpha": 2, "dataset": "pubmed", "Ps": 4}
        assert rec.counters == {"cycles": 12.0}

    def test_exception_marks_error_and_closes(self):
        with tracing() as tracer:
            with pytest.raises(RuntimeError):
                with span("failing"):
                    raise RuntimeError("x")
        (rec,) = tracer.records
        assert rec.attrs["error"] == "RuntimeError"

    def test_span_paths_ancestry(self):
        with tracing() as tracer:
            with span("a"):
                with span("b"):
                    with span("c"):
                        pass
        paths = span_paths(tracer.records)
        assert sorted(paths.values()) == ["a", "a/b", "a/b/c"]

    def test_threads_get_independent_stacks(self):
        with tracing() as tracer:
            barrier = threading.Barrier(2)

            def work(name):
                barrier.wait()
                with span(name):
                    pass

            threads = [
                threading.Thread(target=work, args=(f"t{i}",), name=f"w{i}")
                for i in range(2)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        records = tracer.records
        assert len(records) == 2
        # both spans are thread roots, on distinct stable thread indices
        assert all(r.parent_id is None for r in records)
        assert len({r.thread for r in records}) == 2

    def test_durations_are_nonnegative_and_monotonic(self):
        with tracing() as tracer:
            with span("outer"):
                with span("inner"):
                    pass
        outer = tracer.find("outer")[0]
        inner = tracer.find("inner")[0]
        assert inner.duration_us >= 0
        assert outer.duration_us >= inner.duration_us
        assert outer.start_us <= inner.start_us


class TestMetrics:
    def test_counter_totals_and_events(self):
        reg = MetricsRegistry()
        reg.counter("hits").add(1)
        reg.counter("hits").add(2)
        c = reg.as_dict()["counters"]["hits"]
        assert c == {"total": 3.0, "events": 2}

    def test_gauge_tracks_extremes_and_mean(self):
        reg = MetricsRegistry()
        for v in (3.0, 1.0, 2.0):
            reg.gauge("depth").set(v)
        g = reg.as_dict()["gauges"]["depth"]
        assert g["last"] == 2.0 and g["min"] == 1.0 and g["max"] == 3.0
        assert g["mean"] == 2.0

    def test_registry_helpers_route_to_active_tracer(self):
        with tracing() as tracer:
            counter_add("c", 2.0)
            gauge_set("g", 5.0)
        snap = tracer.metrics.as_dict()
        assert snap["counters"]["c"]["total"] == 2.0
        assert snap["gauges"]["g"]["last"] == 5.0


class TestExport:
    def _traced(self):
        with tracing() as tracer:
            with span("root", dataset="pubmed") as sp:
                sp.add("cycles", 3.0)
                with span("leaf"):
                    pass
        return tracer

    def test_chrome_trace_schema(self):
        payload = chrome_trace_events(self._traced())
        assert validate_trace_events(payload) == []
        kinds = {e["ph"] for e in payload["traceEvents"]}
        assert kinds == {"M", "X"}
        complete = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        assert {e["name"] for e in complete} == {"root", "leaf"}
        root = next(e for e in complete if e["name"] == "root")
        assert root["args"]["dataset"] == "pubmed"
        assert root["args"]["counter.cycles"] == 3.0

    def test_validator_rejects_malformed_payloads(self):
        assert validate_trace_events([]) != []
        assert validate_trace_events({"traceEvents": "nope"}) != []
        bad_event = {"traceEvents": [{"ph": "Q", "name": 3}]}
        errors = validate_trace_events(bad_event)
        assert errors

    def test_file_roundtrip_and_jsonl(self, tmp_path):
        tracer = self._traced()
        trace_path = write_chrome_trace(tracer, tmp_path / "trace.json")
        assert validate_trace_file(trace_path) == []
        jsonl_path = write_span_jsonl(tracer, tmp_path / "spans.jsonl")
        lines = jsonl_path.read_text().strip().splitlines()
        assert len(lines) == 2
        names = {json.loads(line)["name"] for line in lines}
        assert names == {"root", "leaf"}


class TestPhaseReport:
    def test_aggregation_by_path_with_counters(self):
        with tracing() as tracer:
            for i in range(3):
                with span("simulate"):
                    with span("snapshot", index=i) as sp:
                        sp.add("cycles", 10.0)
        report = build_phase_report(tracer)
        sim = report.phase("simulate")
        snap = report.phase("simulate/snapshot")
        assert sim.count == 3 and snap.count == 3
        assert snap.counters == {"cycles": 30.0}
        assert report.counter_total("simulate/snapshot", "cycles") == 30.0
        assert report.counter_total("simulate/absent", "cycles") == 0.0

    def test_render_text_contains_percent_of_parent(self):
        with tracing() as tracer:
            with span("a"):
                with span("b"):
                    pass
        text = build_phase_report(tracer).render_text()
        assert "%parent" in text
        assert "a" in text and "b" in text

    def test_render_json_parses(self):
        with tracing() as tracer:
            with span("a") as sp:
                sp.add("x", 1.0)
            gauge_set("g", 4.0)
        payload = json.loads(build_phase_report(tracer).render_json())
        assert payload["phases"]["children"][0]["name"] == "a"
        assert payload["metrics"]["gauges"]["g"]["last"] == 4.0


class TestTraceSession:
    def test_exports_all_artifacts(self, tmp_path):
        with TraceSession(tmp_path) as session:
            with span("work"):
                pass
        assert session.report is not None
        assert sorted(session.written) == ["flame", "phases", "spans", "trace"]
        for path in session.written.values():
            assert path.exists()
        assert validate_trace_file(session.written["trace"]) == []

    def test_stem_prefixes_filenames(self, tmp_path):
        tracer = Tracer()
        install(tracer)
        try:
            with span("w"):
                pass
        finally:
            uninstall()
        written = export_all(tracer, tmp_path, stem="case_x")
        assert written["trace"].name == "case_x.trace.json"
        assert written["spans"].name == "case_x.spans.jsonl"
        assert written["phases"].name == "case_x.phases.json"

    def test_no_export_on_error(self, tmp_path):
        out = tmp_path / "traces"
        with pytest.raises(RuntimeError):
            with TraceSession(out):
                raise RuntimeError("boom")
        assert not tracing_enabled()
        assert not out.exists()

    def test_session_without_out_dir_builds_report_only(self):
        with TraceSession() as session:
            with span("w"):
                pass
        assert session.report is not None
        assert session.written == {}
