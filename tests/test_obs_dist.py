"""Tests for distributed tracing, shard telemetry, and SLO monitoring.

The load-bearing assertions mirror the dist parity suite: tracing a
sharded run must not perturb its per-window results (bit-identical to
the offline reference across a depth x shard sweep), the canonical
merged shard-span log must be byte-identical across runs of the same
workload, and the telemetry the shard workers flush back must reconcile
*exactly* with :class:`~repro.dist.stats.ShardedStats` on healthy runs.
"""

import json
import re
from dataclasses import replace

import pytest

from repro.core.plan import DGNNSpec
from repro.dist import ShardedConfig, ShardedService
from repro.obs import (
    SLOMonitor,
    SLOTarget,
    TraceSession,
    aggregate_shard_counters,
    build_phase_report,
    chrome_trace_events,
    collapsed_stacks,
    default_targets,
    latest_shard_metrics,
    shard_span_lines,
    validate_trace_events,
    write_flamegraph,
    write_shard_span_jsonl,
)
from repro.obs.distributed import COORDINATOR_PID, shard_pid
from repro.serving import (
    ServiceConfig,
    serve_offline,
    synthetic_event_stream,
)
from repro.serving.stats import ServiceStats

SPEC = DGNNSpec(gcn_dims=(8, 8), rnn_hidden_dim=8)


@pytest.fixture(scope="module")
def stream():
    return synthetic_event_stream(num_vertices=64, num_events=1500, seed=3)


@pytest.fixture(scope="module")
def service_config(stream):
    first, last = stream.time_span
    return ServiceConfig(window=(last - first) / 10, workers=2)


@pytest.fixture(scope="module")
def offline(stream, service_config):
    return serve_offline(stream, SPEC, config=service_config)


def _traced_serve(stream, config, shards):
    with TraceSession() as session:
        report = ShardedService(
            config=ShardedConfig(shards=shards, service=config)
        ).serve(stream, SPEC)
    return session, report


@pytest.fixture(scope="module")
def traced2(stream, service_config):
    """One traced 2-shard run shared by the read-only assertions."""
    return _traced_serve(stream, service_config, shards=2)


class TestMergedTrace:
    def test_pid_track_per_process(self, traced2):
        session, _ = traced2
        payload = chrome_trace_events(session.tracer)
        span_pids = {
            e["pid"] for e in payload["traceEvents"] if e["ph"] == "X"
        }
        assert span_pids == {COORDINATOR_PID, shard_pid(0), shard_pid(1)}
        names = {
            e["pid"]: e["args"]["name"]
            for e in payload["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert names == {
            COORDINATOR_PID: "coordinator",
            shard_pid(0): "shard0",
            shard_pid(1): "shard1",
        }

    def test_merged_trace_passes_schema_validation(self, traced2):
        session, _ = traced2
        assert validate_trace_events(chrome_trace_events(session.tracer)) == []

    def test_schema_version_bumped(self, traced2):
        session, _ = traced2
        payload = chrome_trace_events(session.tracer)
        assert payload["otherData"]["schema"] == 2
        assert payload["otherData"]["shard_batches"] == len(
            session.tracer.shard_batches
        )

    def test_context_rides_every_shard_span(self, traced2):
        session, _ = traced2
        for batch in session.tracer.shard_batches:
            assert batch.context.shard in (0, 1)
            assert batch.context.trace_id
            for span in batch.spans:
                assert span["name"].startswith("shard.")

    def test_batches_cover_every_window_per_shard(self, traced2):
        session, report = traced2
        windows = report.stats.windows
        for shard in (0, 1):
            flushed = sorted(
                b.window
                for b in session.tracer.shard_batches
                if b.context.shard == shard
            )
            # One flush per window plus the terminal flush at end_window.
            assert flushed == list(range(windows)) + [windows]


class TestCanonicalShardLog:
    def test_byte_identical_across_runs(
        self, stream, service_config, tmp_path
    ):
        paths = []
        for run in range(2):
            session, _ = _traced_serve(stream, service_config, shards=2)
            paths.append(
                write_shard_span_jsonl(
                    session.tracer, tmp_path / f"run{run}.jsonl"
                )
            )
        assert paths[0].read_bytes() == paths[1].read_bytes()

    def test_no_wallclock_fields_in_canonical_log(self, traced2):
        session, _ = traced2
        lines = shard_span_lines(session.tracer)
        assert lines
        for line in lines:
            record = json.loads(line)
            assert set(record) == {
                "attrs",
                "counters",
                "depth",
                "generation",
                "name",
                "parent_id",
                "shard",
                "span_id",
            }


class TestParityUnderTracing:
    @pytest.mark.parametrize("depth", [1, 2, 4])
    @pytest.mark.parametrize("shards", [1, 2])
    def test_traced_results_bit_identical_to_offline(
        self, stream, service_config, offline, depth, shards
    ):
        config = replace(service_config, pipeline_depth=depth)
        _, traced = _traced_serve(stream, config, shards=shards)
        untraced = ShardedService(
            config=ShardedConfig(shards=shards, service=config)
        ).serve(stream, SPEC)
        assert traced.results == offline
        assert untraced.results == offline
        assert traced.results == untraced.results


class TestShardTelemetry:
    def test_counters_reconcile_exactly_with_sharded_stats(self, traced2):
        session, report = traced2
        stats = report.stats
        folded = aggregate_shard_counters(session.tracer)
        assert folded["shard.events"]["total"] == stats.events
        assert folded["shard.windows"]["total"] == stats.windows * stats.shards
        for shard_stats in stats.shard_stats:
            key = f"shard{shard_stats.shard}"
            assert folded["shard.events"][key] == shard_stats.events
            assert folded["shard.segments"][key] == shard_stats.segments

    def test_latest_gauges_match_final_shard_state(self, traced2):
        session, report = traced2
        latest = latest_shard_metrics(session.tracer)
        for shard_stats in report.stats.shard_stats:
            gauges = latest[shard_stats.shard]["gauges"]
            assert gauges["shard.edges"]["last"] == shard_stats.edges_final
            assert (
                gauges["shard.cut_edges"]["last"]
                == shard_stats.cut_edges_final
            )

    def test_phase_report_carries_imbalance_view(self, traced2):
        session, _ = traced2
        report = build_phase_report(session.tracer)
        assert "shard.window" in report.shards
        view = report.shards["shard.window"]
        assert set(view["per_shard"]) == {0, 1}
        assert view["max_us"] >= view["mean_us"] > 0
        assert view["imbalance"] >= 1.0
        assert "shard.events" in report.shard_counters
        rendered = report.render_text()
        assert "shard phase" in rendered
        assert "imbalance" in rendered


class TestFlamegraph:
    def test_collapsed_stack_format(self, traced2):
        session, _ = traced2
        lines = collapsed_stacks(session.tracer)
        assert lines
        for line in lines:
            assert re.fullmatch(r"[^ ]+ \d+", line), line
        roots = {line.split(";")[0].split(" ")[0] for line in lines}
        assert "shard0" in roots and "shard1" in roots

    def test_write_flamegraph(self, traced2, tmp_path):
        session, _ = traced2
        path = write_flamegraph(session.tracer, tmp_path / "flame.folded")
        content = path.read_text()
        assert content.endswith("\n")
        assert content.splitlines() == collapsed_stacks(session.tracer)


class TestSchema2Validation:
    @staticmethod
    def _payload(events):
        return {"traceEvents": events}

    def test_multi_pid_without_process_name_is_an_error(self):
        events = [
            {"name": "a", "ph": "X", "pid": 0, "tid": 0, "ts": 0, "dur": 1},
            {"name": "b", "ph": "X", "pid": 1, "tid": 0, "ts": 0, "dur": 1},
        ]
        errors = validate_trace_events(self._payload(events))
        assert any("pid 0" in e for e in errors)
        assert any("pid 1" in e for e in errors)

    def test_multi_pid_with_process_names_is_valid(self):
        events = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": f"p{pid}"},
            }
            for pid in (0, 1)
        ] + [
            {"name": "a", "ph": "X", "pid": 0, "tid": 0, "ts": 0, "dur": 1},
            {"name": "b", "ph": "X", "pid": 1, "tid": 0, "ts": 0, "dur": 1},
        ]
        assert validate_trace_events(self._payload(events)) == []

    def test_single_pid_needs_no_process_name(self):
        events = [
            {"name": "a", "ph": "X", "pid": 5, "tid": 0, "ts": 0, "dur": 1}
        ]
        assert validate_trace_events(self._payload(events)) == []

    def test_metadata_event_name_is_checked(self):
        events = [
            {
                "name": "frobnicate",
                "ph": "M",
                "pid": 0,
                "tid": 0,
                "args": {"name": "x"},
            }
        ]
        errors = validate_trace_events(self._payload(events))
        assert any("thread_name or process_name" in e for e in errors)

    def test_metadata_args_name_must_be_string(self):
        events = [
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": 0,
                "args": {"name": 7},
            }
        ]
        errors = validate_trace_events(self._payload(events))
        assert any("args.name" in e for e in errors)


class TestSLO:
    def test_target_ops(self):
        assert SLOTarget(metric="m", op="max", threshold=1.0).ok(0.5)
        assert not SLOTarget(metric="m", op="max", threshold=1.0).ok(1.5)
        assert SLOTarget(metric="m", op="min", threshold=0.5).ok(0.7)
        assert not SLOTarget(metric="m", op="min", threshold=0.5).ok(0.2)

    def test_invalid_op_rejected(self):
        with pytest.raises(ValueError):
            SLOTarget(metric="m", op="between", threshold=1.0)

    def test_unknown_metric_raises(self):
        monitor = SLOMonitor([SLOTarget(metric="nope", op="max", threshold=1)])
        with pytest.raises(KeyError):
            monitor.evaluate(ServiceStats())

    def test_healthy_run(self, traced2):
        _, report = traced2
        slo = SLOMonitor().evaluate(report.stats)
        assert slo.healthy
        assert slo.exit_code == 0
        assert slo.violations == []
        assert "SLO OK" in slo.render_text()

    def test_violation_flips_exit_code_and_window_records(self, traced2):
        _, report = traced2
        monitor = SLOMonitor(default_targets(p95_latency_s=1e-9))
        slo = monitor.evaluate(report.stats)
        assert not slo.healthy
        assert slo.exit_code == 1
        assert all(r.window is None for r in slo.violations)
        breached = [r for r in slo.window_records if not r.ok]
        assert breached and all(r.window is not None for r in breached)
        assert "SLO VIOLATED" in slo.render_text()
        payload = json.loads(slo.render_json())
        assert payload["healthy"] is False
        assert payload["windows"]  # per-window breaches are listed

    def test_restart_budget_defaults_for_single_process_stats(self):
        # ServiceStats has no ``restarts`` field; the monitor treats the
        # single-process service as a zero-restart run.
        slo = SLOMonitor().evaluate(ServiceStats())
        observed = {r.metric: r.observed for r in slo.run_records}
        assert observed["restarts"] == 0.0

    def test_report_roundtrip(self, traced2, tmp_path):
        _, report = traced2
        slo = SLOMonitor().evaluate(report.stats)
        path = slo.write(tmp_path / "slo.json")
        payload = json.loads(path.read_text())
        assert payload["healthy"] is True
        assert {t["metric"] for t in payload["targets"]} == {
            "p95_latency_s",
            "shed_rate",
            "restarts",
            "overlap_ratio",
        }


class TestEmptyRunStats:
    """Regression tests: an empty run must report, not divide by zero."""

    def test_summary_on_empty_run(self):
        stats = ServiceStats()
        text = stats.summary()
        assert "windows served     0" in text
        assert "p95=0.00 ms" in text

    def test_as_dict_on_empty_run_is_all_finite(self):
        values = ServiceStats().as_dict()
        for name, value in values.items():
            assert value == value and abs(value) != float("inf"), name
        assert values["p95_latency_s"] == 0.0
        assert values["overlap_ratio"] == 0.0
        assert values["shed_rate"] == 0.0

    def test_empty_sharded_stats(self):
        from repro.dist.stats import ShardedStats

        values = ShardedStats().as_dict()
        assert values["cut_edges_final"] == 0
        assert values["shed_rate"] == 0.0
        assert "windows served     0" in ShardedStats().summary()
