"""Integration tests: instrumentation of planner / simulator / serving.

The two load-bearing guarantees:

* **Attribution** — the phase report's deterministic counter sums
  reconcile exactly with :class:`~repro.accel.metrics.SimulationResult`
  totals (nothing double-counted, nothing dropped);
* **Zero-cost-when-off** — running a bench case under the tracer leaves
  its deterministic counters bit-identical to an untraced run.
"""

import math

import pytest

from repro.bench import BenchRunner, default_registry
from repro.core.plan import DGNNSpec
from repro.ditile import DiTileAccelerator
from repro.graphs.continuous import ContinuousDynamicGraph
from repro.graphs.datasets import dataset_profile, load_dataset
from repro.obs import build_phase_report, tracing
from repro.serving.service import ServiceConfig, StreamingService

BENCH_CASE = "planner/tiling[pm]"


@pytest.fixture(scope="module")
def workload():
    graph = load_dataset("pubmed", scale=0.05, snapshots=3, seed=0)
    spec = DGNNSpec.classic(dataset_profile("pubmed").feature_dim, 128)
    return graph, spec


class TestPlannerSpans:
    def test_plan_phases_and_attrs(self, workload):
        graph, spec = workload
        model = DiTileAccelerator()
        with tracing() as tracer:
            plan = model.plan(graph, spec)
        names = {r.name for r in tracer.records}
        assert {"plan", "tiling", "parallelism", "balance", "redundancy"} <= names
        tiling = tracer.find("tiling")[0]
        assert tiling.attrs["alpha"] == plan.tiling.alpha
        parallelism = tracer.find("parallelism")[0]
        assert parallelism.attrs["Ps"] == plan.factors.snapshot_groups
        assert parallelism.attrs["Pv"] == plan.factors.vertex_groups
        assert parallelism.counters["total_comm_rows"] == pytest.approx(
            plan.comm.total
        )
        root = tracer.find("plan")[0]
        for stage in ("tiling", "parallelism", "balance", "redundancy"):
            assert tracer.find(stage)[0].parent_id == root.span_id


class TestSimulatorAttribution:
    def test_counters_reconcile_with_simulation_totals(self, workload):
        graph, spec = workload
        model = DiTileAccelerator()
        with tracing() as tracer:
            result = model.simulate(graph, spec)
        report = build_phase_report(tracer)

        def total(path, counter):
            return report.counter_total(path, counter)

        checks = {
            ("simulate/snapshot/compute", "cycles"): result.cycles.compute,
            ("simulate/snapshot/noc", "cycles"): result.cycles.on_chip,
            ("simulate/snapshot/dram", "cycles"): result.cycles.off_chip,
            ("simulate/snapshot/overhead", "cycles"): result.cycles.overhead,
            ("simulate/snapshot", "cycles"): result.cycles.total,
            ("simulate/snapshot/noc", "byte_hops"): result.noc_byte_hops,
            ("simulate/snapshot/dram", "bytes"): result.dram_bytes,
        }
        for (path, counter), expected in checks.items():
            assert math.isclose(
                total(path, counter), expected, rel_tol=1e-12, abs_tol=1e-9
            ), (path, counter)

    def test_noc_traffic_classes_sum_to_noc_bytes(self, workload):
        graph, spec = workload
        model = DiTileAccelerator()
        with tracing() as tracer:
            result = model.simulate(graph, spec)
        report = build_phase_report(tracer)
        classes = sum(
            report.counter_total("simulate/snapshot/noc", c)
            for c in ("temporal_bytes", "spatial_bytes", "reuse_bytes")
        )
        assert classes == pytest.approx(result.noc_bytes, rel=1e-12)

    def test_kernel_macs_sum_to_total_macs(self, workload):
        graph, spec = workload
        model = DiTileAccelerator()
        with tracing() as tracer:
            result = model.simulate(graph, spec)
        report = build_phase_report(tracer)
        macs = sum(
            report.counter_total(f"simulate/snapshot/compute/{k}", "macs")
            for k in ("aggregation", "combination", "rnn")
        )
        assert macs == pytest.approx(result.total_macs, rel=1e-12)

    def test_one_snapshot_span_per_snapshot(self, workload):
        graph, spec = workload
        with tracing() as tracer:
            DiTileAccelerator().simulate(graph, spec)
        assert len(tracer.find("snapshot")) == graph.num_snapshots


class TestServingSpans:
    @pytest.fixture(scope="class")
    def traced_serve(self):
        graph = load_dataset("pubmed", scale=0.05, snapshots=4, seed=0)
        stream = ContinuousDynamicGraph.from_snapshots(graph)
        spec = DGNNSpec.classic(dataset_profile("pubmed").feature_dim, 128)
        service = StreamingService(config=ServiceConfig(workers=2))
        with tracing() as tracer:
            report = service.serve(stream, spec)
        return tracer, report

    def test_window_lifecycle_phases(self, traced_serve):
        tracer, report = traced_serve
        names = {r.name for r in tracer.records}
        assert {"serve", "ingest", "window", "resolve", "execute"} <= names
        assert len(tracer.find("window")) == report.num_windows
        assert len(tracer.find("execute")) == report.num_windows

    def test_resolve_decisions_match_stats(self, traced_serve):
        tracer, report = traced_serve
        decisions = [r.attrs["decision"] for r in tracer.find("resolve")]
        assert decisions.count("hit") == report.stats.plan_hits
        assert decisions.count("miss") == report.stats.plan_misses
        assert decisions.count("replan") == report.stats.plan_replans

    def test_plan_cache_metrics_and_gauges(self, traced_serve):
        tracer, report = traced_serve
        snap = tracer.metrics.as_dict()
        counters = snap["counters"]
        if report.stats.plan_misses:
            assert counters["plan_cache.miss"]["total"] == report.stats.plan_misses
        assert "serve.queue_depth" in snap["gauges"]
        assert snap["gauges"]["serve.plan_cache_hit_rate"]["last"] == (
            pytest.approx(report.stats.plan_hit_rate)
        )

    def test_execute_cycles_match_served_results(self, traced_serve):
        tracer, report = traced_serve
        traced = sum(r.counters["cycles"] for r in tracer.find("execute"))
        assert traced == pytest.approx(report.total_cycles, rel=1e-12)

    def test_phase_timings_populated(self, traced_serve):
        _, report = traced_serve
        assert report.stats.plan_resolve_s > 0
        assert report.stats.execute_s > 0


class TestZeroCostWhenOff:
    def test_traced_bench_counters_bit_identical(self, tmp_path):
        registry = default_registry()
        plain = BenchRunner(registry, repeats=1, warmup=0).run(
            names=[BENCH_CASE]
        )
        traced = BenchRunner(
            registry, repeats=1, warmup=0, trace_dir=tmp_path
        ).run(names=[BENCH_CASE])
        assert plain.cases[0].counters == traced.cases[0].counters
        # byte-identical, not merely approximately equal
        for name, value in plain.cases[0].counters.items():
            assert value.hex() == traced.cases[0].counters[name].hex()

    def test_bench_trace_artifacts_written(self, tmp_path):
        BenchRunner(
            default_registry(), repeats=1, warmup=0, trace_dir=tmp_path
        ).run(names=[BENCH_CASE])
        stems = {p.name for p in tmp_path.iterdir()}
        assert stems == {
            "planner_tiling_pm.trace.json",
            "planner_tiling_pm.spans.jsonl",
            "planner_tiling_pm.phases.json",
            "planner_tiling_pm.flame.folded",
        }

    def test_simulation_results_identical_with_and_without_tracing(
        self, workload
    ):
        graph, spec = workload
        plain = DiTileAccelerator().simulate(graph, spec)
        with tracing():
            traced = DiTileAccelerator().simulate(graph, spec)
        assert plain.cycles.as_dict() == traced.cycles.as_dict()
        assert plain.total_macs == traced.total_macs
        assert plain.dram_bytes == traced.dram_bytes
        assert plain.noc_byte_hops == traced.noc_byte_hops
