"""Tests for the front-end overhead model, roofline analysis, and
the BFS partitioner."""

import numpy as np
import pytest

from repro.accel.analysis import analyze
from repro.accel.config import HardwareConfig
from repro.core.overhead import FrontEndModel
from repro.ditile import DiTileAccelerator
from repro.graphs.partition import (
    bfs_partition,
    contiguous_vertex_partition,
    edge_cut,
)


class TestFrontEndModel:
    def test_estimate_stages_positive(self, medium_graph, medium_spec):
        model = DiTileAccelerator()
        plan = model.plan(medium_graph, medium_spec)
        estimate = FrontEndModel().estimate_for_plan(plan, 16)
        assert estimate.workload_computation > 0
        assert estimate.parallelization_search > 0
        assert estimate.balance_generation > 0
        assert estimate.redundancy_detection > 0
        assert estimate.total_cycles > 0

    def test_front_end_is_small_next_to_execution(
        self, medium_graph, medium_spec
    ):
        """The paper's <7% control share implies a cheap front end."""
        model = DiTileAccelerator()
        plan = model.plan(medium_graph, medium_spec)
        result = model.simulate(medium_graph, medium_spec)
        estimate = FrontEndModel().estimate_for_plan(plan, 16)
        assert estimate.total_cycles < 0.5 * result.execution_cycles

    def test_energy_positive(self, medium_graph, medium_spec):
        model = DiTileAccelerator()
        plan = model.plan(medium_graph, medium_spec)
        front_end = FrontEndModel()
        estimate = front_end.estimate_for_plan(plan, 16)
        assert front_end.energy_joules(estimate) > 0

    def test_scales_with_graph_size(self, medium_graph, small_graph, medium_spec, small_spec):
        front_end = FrontEndModel()
        big = front_end.estimate_for_plan(
            DiTileAccelerator().plan(medium_graph, medium_spec), 16
        )
        small = front_end.estimate_for_plan(
            DiTileAccelerator().plan(small_graph, small_spec), 16
        )
        assert big.workload_computation > small.workload_computation


class TestRooflineAnalysis:
    def test_classification_fields(self, medium_graph, medium_spec):
        model = DiTileAccelerator()
        result = model.simulate(medium_graph, medium_spec)
        roofline = analyze(result, model.hardware)
        assert roofline.bound in ("compute", "memory", "interconnect", "overhead")
        assert roofline.operational_intensity > 0
        assert roofline.ridge_intensity > 0
        assert 0 <= roofline.achieved_fraction_of_peak <= 1
        assert "bound" in roofline.summary()

    def test_fractions_describe_components(self, medium_graph, medium_spec):
        model = DiTileAccelerator()
        result = model.simulate(medium_graph, medium_spec)
        roofline = analyze(result, model.hardware)
        cycles = result.cycles
        assert roofline.compute_fraction == pytest.approx(
            cycles.compute / cycles.total
        )
        assert roofline.memory_fraction == pytest.approx(
            cycles.off_chip / cycles.total
        )

    def test_memory_bound_detection(self):
        from repro.accel.dram import DRAMTraffic
        from repro.accel.metrics import CostSummary, SnapshotCosts
        from repro.accel.simulator import AcceleratorSimulator

        hw = HardwareConfig.small()
        costs = CostSummary(
            "x",
            [SnapshotCosts(0, rnn_macs=1e3,
                           dram=DRAMTraffic(streaming_read=1e9))],
        )
        result = AcceleratorSimulator(hw).run(costs)
        roofline = analyze(result, hw)
        assert roofline.bound == "memory"
        assert roofline.is_below_ridge


class TestBFSPartition:
    def test_is_valid_partition(self, medium_graph):
        partition = bfs_partition(medium_graph[0], 4)
        assert partition.sizes().sum() == medium_graph[0].num_vertices
        assert partition.num_parts == 4

    def test_near_balanced_cardinality(self, medium_graph):
        partition = bfs_partition(medium_graph[0], 4)
        sizes = partition.sizes()
        assert sizes.max() <= -(-medium_graph[0].num_vertices // 4) + 1

    def test_cuts_fewer_edges_than_random_ids(self, medium_graph):
        # Vertex ids are random in the generator, so contiguous ranges are
        # effectively random groups; BFS growth must beat them on cut size.
        snapshot = medium_graph[0]
        bfs_cut = edge_cut(snapshot, bfs_partition(snapshot, 4))
        natural_cut = edge_cut(
            snapshot, contiguous_vertex_partition(snapshot.num_vertices, 4)
        )
        assert bfs_cut < natural_cut

    def test_handles_isolated_vertices(self):
        from repro.graphs.snapshot import GraphSnapshot

        snapshot = GraphSnapshot.from_edges(10, [(0, 1)])
        partition = bfs_partition(snapshot, 3)
        assert partition.sizes().sum() == 10

    def test_rejects_bad_parts(self, medium_graph):
        with pytest.raises(ValueError):
            bfs_partition(medium_graph[0], 0)
