"""Unit tests for repro.core.parallelism (Algorithm 1 search)."""

import pytest

from repro.core.comm_model import WorkloadProfile
from repro.core.parallelism import (
    ParallelismOptimizer,
    spatial_factors,
    temporal_factors,
)


def _profile(vertices=100, edges=400, snapshots=8, dis=0.1, layers=2):
    return WorkloadProfile(layers, snapshots, float(vertices), float(edges), dis)


class TestFactorHelpers:
    def test_temporal_uses_all_tiles_for_snapshots(self):
        factors = temporal_factors(_profile(snapshots=32), 16)
        assert factors.snapshot_groups == 16
        assert factors.vertex_groups == 1

    def test_temporal_clamps_to_snapshot_count(self):
        factors = temporal_factors(_profile(snapshots=4), 16)
        assert factors.snapshot_groups == 4

    def test_spatial_uses_all_tiles_for_vertices(self):
        factors = spatial_factors(_profile(), 16)
        assert factors.snapshot_groups == 1
        assert factors.vertex_groups == 16


class TestOptimizer:
    def test_rejects_bad_tiles(self):
        with pytest.raises(ValueError):
            ParallelismOptimizer(_profile(), 0)

    def test_candidates_cover_factor_pairs(self):
        optimizer = ParallelismOptimizer(_profile(snapshots=16), 16)
        shapes = {
            (ev.factors.snapshot_groups, ev.factors.vertex_groups)
            for ev in optimizer.candidates()
        }
        assert (1, 16) in shapes
        assert (4, 4) in shapes
        assert (16, 1) in shapes

    def test_optimize_returns_minimum(self):
        optimizer = ParallelismOptimizer(_profile(), 16)
        best = optimizer.optimize()
        for candidate in optimizer.candidates():
            assert best.total_comm <= candidate.total_comm + 1e-9

    def test_dense_stable_prefers_spatial(self):
        # Dense graph, few snapshots, high similarity: reuse traffic makes
        # snapshot-group boundaries expensive -> spatial mapping.
        profile = _profile(vertices=800, edges=24_000, snapshots=8, dis=0.05)
        best = ParallelismOptimizer(profile, 16).optimize()
        assert best.factors.snapshot_groups == 1

    def test_sparse_volatile_prefers_temporal(self):
        # Near-tree graph, many snapshots, little similarity: spatial
        # aggregation traffic dominates -> temporal mapping.
        profile = _profile(vertices=800, edges=800, snapshots=64, dis=0.5)
        best = ParallelismOptimizer(profile, 16).optimize()
        assert best.factors.vertex_groups == 1

    def test_dynamic_beats_both_static_strategies(self):
        profile = _profile(vertices=500, edges=3_000, snapshots=16, dis=0.2)
        strategies = ParallelismOptimizer(profile, 16).compare_static_strategies()
        dynamic = strategies["dynamic"].total_comm
        assert dynamic <= strategies["temporal"].total_comm + 1e-9
        assert dynamic <= strategies["spatial"].total_comm + 1e-9

    def test_evaluate_explicit_shape(self):
        optimizer = ParallelismOptimizer(_profile(), 16)
        evaluation = optimizer.evaluate(4, 4)
        assert evaluation.factors.snapshot_groups == 4
        assert evaluation.factors.vertex_groups == 4
        assert evaluation.total_comm >= 0

    def test_partial_grids_allowed_when_not_full(self):
        optimizer = ParallelismOptimizer(
            _profile(), 16, require_full_grid=False
        )
        shapes = {
            (ev.factors.snapshot_groups, ev.factors.vertex_groups)
            for ev in optimizer.candidates()
        }
        assert (2, 2) in shapes  # 4 tiles only

    def test_single_tile(self):
        best = ParallelismOptimizer(_profile(), 1).optimize()
        assert best.factors.tiles_used == 1
        assert best.total_comm == pytest.approx(0.0)
