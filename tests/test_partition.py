"""Unit tests for repro.graphs.partition."""

import numpy as np
import pytest

from repro.graphs.partition import (
    VertexPartition,
    contiguous_vertex_partition,
    edge_cut,
    hash_vertex_partition,
    jump_consistent_hash,
    partition_loads,
    round_robin_partition,
    shard_subgraph,
    snapshot_assignment,
)
from repro.graphs.snapshot import GraphSnapshot


class TestVertexPartition:
    def test_members_and_sizes(self):
        partition = VertexPartition(2, np.array([0, 1, 0, 1, 0]))
        np.testing.assert_array_equal(partition.members(0), [0, 2, 4])
        np.testing.assert_array_equal(partition.sizes(), [3, 2])
        assert partition.num_vertices == 5

    def test_rejects_out_of_range_assignment(self):
        with pytest.raises(ValueError):
            VertexPartition(2, np.array([0, 2]))

    def test_rejects_nonpositive_parts(self):
        with pytest.raises(ValueError):
            VertexPartition(0, np.array([], dtype=np.int64))


class TestContiguousPartition:
    def test_even_split(self):
        partition = contiguous_vertex_partition(10, 2)
        np.testing.assert_array_equal(partition.sizes(), [5, 5])
        np.testing.assert_array_equal(partition.members(0), np.arange(5))

    def test_uneven_split_balanced(self):
        partition = contiguous_vertex_partition(10, 3)
        sizes = partition.sizes()
        assert sizes.sum() == 10
        assert sizes.max() - sizes.min() <= 1

    def test_more_parts_than_vertices(self):
        partition = contiguous_vertex_partition(2, 4)
        assert partition.sizes().sum() == 2
        # Deterministic tie-breaking: vertex i owns part i, the tail
        # parts are empty.
        np.testing.assert_array_equal(partition.assignment, [0, 1])
        np.testing.assert_array_equal(partition.empty_parts(), [2, 3])


class TestEmptyParts:
    def test_reports_unpopulated_parts(self):
        partition = VertexPartition(4, np.array([0, 0, 3]))
        np.testing.assert_array_equal(partition.empty_parts(), [1, 2])

    def test_full_partition_has_none(self):
        partition = VertexPartition(2, np.array([0, 1]))
        assert partition.empty_parts().size == 0


class TestJumpConsistentHash:
    def test_deterministic(self):
        keys = np.arange(1000, dtype=np.uint64)
        np.testing.assert_array_equal(
            jump_consistent_hash(keys, 7), jump_consistent_hash(keys, 7)
        )

    def test_buckets_in_range_and_all_used(self):
        buckets = jump_consistent_hash(np.arange(2000, dtype=np.uint64), 8)
        assert buckets.min() >= 0 and buckets.max() < 8
        assert len(np.unique(buckets)) == 8

    def test_minimal_remap_on_growth(self):
        # The jump-hash contract: growing k -> k+1 moves keys only into
        # the *new* bucket; everything else stays put.
        keys = np.arange(5000, dtype=np.uint64)
        for k in (1, 2, 4, 7):
            before = jump_consistent_hash(keys, k)
            after = jump_consistent_hash(keys, k + 1)
            moved = before != after
            assert np.all(after[moved] == k)
            # And roughly 1/(k+1) of the keys move.
            assert moved.mean() < 2.5 / (k + 1)


class TestHashVertexPartition:
    def test_deterministic_per_seed(self):
        a = hash_vertex_partition(500, 4, seed=3)
        b = hash_vertex_partition(500, 4, seed=3)
        np.testing.assert_array_equal(a.assignment, b.assignment)

    def test_seed_moves_vertices(self):
        a = hash_vertex_partition(500, 4, seed=0)
        b = hash_vertex_partition(500, 4, seed=1)
        assert np.any(a.assignment != b.assignment)

    def test_reasonably_balanced(self):
        partition = hash_vertex_partition(4000, 5, seed=0)
        sizes = partition.sizes()
        assert sizes.sum() == 4000
        assert sizes.max() <= 2 * sizes.min()

    def test_more_parts_than_vertices(self):
        partition = hash_vertex_partition(3, 8, seed=0)
        assert partition.num_parts == 8
        assert partition.sizes().sum() == 3
        assert partition.empty_parts().size >= 5


class TestShardSubgraph:
    def test_shards_are_a_disjoint_cover(self):
        rng = np.random.default_rng(0)
        src = rng.integers(0, 30, size=120)
        dst = rng.integers(0, 30, size=120)
        snapshot = GraphSnapshot.from_edge_arrays(30, src, dst)
        partition = hash_vertex_partition(30, 3, seed=1)
        shards = [shard_subgraph(snapshot, partition, p) for p in range(3)]
        assert sum(s.num_edges for s in shards) == snapshot.num_edges
        for part, shard in enumerate(shards):
            assert shard.num_vertices == snapshot.num_vertices  # global ids
            _, shard_dst = shard.edge_arrays()
            assert np.all(partition.assignment[shard_dst] == part)

    def test_rejects_bad_part_and_undersized_partition(self):
        snapshot = GraphSnapshot.from_edges(4, [(0, 1)])
        partition = hash_vertex_partition(4, 2, seed=0)
        with pytest.raises(ValueError):
            shard_subgraph(snapshot, partition, 2)
        small = hash_vertex_partition(2, 2, seed=0)
        with pytest.raises(ValueError):
            shard_subgraph(snapshot, small, 0)


class TestRoundRobinPartition:
    def test_deals_serpentine(self):
        order = np.array([3, 1, 0, 2])  # descending workload order
        partition = round_robin_partition(order, 2, 4)
        # Round 1 deals 3 -> part 0, 1 -> part 1; round 2 reverses:
        # 0 -> part 1, 2 -> part 0.
        assert partition.assignment[3] == 0
        assert partition.assignment[1] == 1
        assert partition.assignment[0] == 1
        assert partition.assignment[2] == 0

    def test_rejects_non_permutation(self):
        with pytest.raises(ValueError):
            round_robin_partition(np.array([0, 0, 1]), 2, 3)

    def test_balances_sorted_loads(self, rng):
        loads = rng.pareto(1.5, size=200) + 1.0
        order = np.argsort(-loads)
        partition = round_robin_partition(order, 4, 200)
        grouped = partition_loads(loads, partition)
        naive = partition_loads(loads, contiguous_vertex_partition(200, 4))
        assert grouped.max() / grouped.mean() <= naive.max() / naive.mean() + 1e-9


class TestSnapshotAssignment:
    def test_consecutive_groups(self):
        groups = snapshot_assignment(8, 4)
        assert len(groups) == 4
        np.testing.assert_array_equal(groups[0], [0, 1])
        np.testing.assert_array_equal(groups[3], [6, 7])

    def test_uneven_groups_cover_all(self):
        groups = snapshot_assignment(7, 3)
        combined = np.concatenate(groups)
        np.testing.assert_array_equal(combined, np.arange(7))

    def test_rejects_nonpositive_groups(self):
        with pytest.raises(ValueError):
            snapshot_assignment(4, 0)


class TestEdgeCut:
    def test_cut_counts_cross_edges(self):
        snapshot = GraphSnapshot.from_edges(4, [(0, 1), (1, 2), (2, 3)])
        partition = VertexPartition(2, np.array([0, 0, 1, 1]))
        assert edge_cut(snapshot, partition) == 1  # only 1 -> 2 crosses

    def test_single_part_has_no_cut(self):
        snapshot = GraphSnapshot.from_edges(4, [(0, 1), (1, 2)])
        partition = VertexPartition(1, np.zeros(4, dtype=np.int64))
        assert edge_cut(snapshot, partition) == 0

    def test_rejects_undersized_partition(self):
        snapshot = GraphSnapshot.from_edges(4, [(0, 1)])
        with pytest.raises(ValueError):
            edge_cut(snapshot, VertexPartition(2, np.array([0, 1])))


class TestPartitionLoads:
    def test_sums_by_part(self):
        partition = VertexPartition(2, np.array([0, 1, 0]))
        loads = partition_loads(np.array([1.0, 2.0, 3.0]), partition)
        np.testing.assert_array_equal(loads, [4.0, 2.0])

    def test_rejects_length_mismatch(self):
        partition = VertexPartition(2, np.array([0, 1]))
        with pytest.raises(ValueError):
            partition_loads(np.array([1.0]), partition)
