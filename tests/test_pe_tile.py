"""Unit tests for repro.accel.pe and repro.accel.tile."""

import pytest

from repro.accel.config import PEConfig, TileConfig
from repro.accel.pe import KernelEfficiency, PEModel
from repro.accel.tile import TileModel, TileWork


class TestKernelEfficiency:
    def test_defaults_ordered(self):
        eff = KernelEfficiency()
        assert eff.dense > eff.elementwise > eff.sparse

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            KernelEfficiency(dense=0.0)
        with pytest.raises(ValueError):
            KernelEfficiency(sparse=1.5)


class TestPEModel:
    def test_dense_cycles_by_hand(self):
        model = PEModel(PEConfig(), KernelEfficiency(dense=0.5))
        # 1600 MACs / (16 MACs/cyc * 0.5) = 200 cycles.
        assert model.dense_cycles(1600) == pytest.approx(200.0)

    def test_sparse_slower_than_dense(self):
        model = PEModel(PEConfig())
        assert model.sparse_cycles(1000) > model.dense_cycles(1000)

    def test_elementwise_cycles(self):
        model = PEModel(PEConfig(), KernelEfficiency(elementwise=0.5))
        assert model.elementwise_cycles(800) == pytest.approx(100.0)


class TestTileWork:
    def test_total(self):
        work = TileWork(10, 20, 30)
        assert work.total_macs == 60


class TestTileModel:
    def test_work_spreads_over_pes(self):
        model = TileModel(TileConfig())
        one_pe_work = TileWork(gnn_combination_macs=16_000)
        # 16 PEs share the load.
        single = PEModel(PEConfig()).dense_cycles(1000)
        assert model.gnn_cycles(one_pe_work) == pytest.approx(single)

    def test_pipeline_overlap_hides_shorter_phase(self):
        full_overlap = TileModel(TileConfig(), pipeline_overlap=1.0)
        no_overlap = TileModel(TileConfig(), pipeline_overlap=0.01)
        work = TileWork(gnn_combination_macs=32_000, rnn_macs=32_000)
        assert full_overlap.total_cycles(work) < no_overlap.total_cycles(work)
        # Perfect overlap = the longer phase alone.
        longer = max(full_overlap.gnn_cycles(work), full_overlap.rnn_cycles(work))
        assert full_overlap.total_cycles(work) == pytest.approx(longer)

    def test_rejects_bad_overlap(self):
        with pytest.raises(ValueError):
            TileModel(TileConfig(), pipeline_overlap=0.0)

    def test_aggregation_runs_at_sparse_efficiency(self):
        model = TileModel(TileConfig())
        agg = model.gnn_cycles(TileWork(gnn_aggregation_macs=16_000))
        comb = model.gnn_cycles(TileWork(gnn_combination_macs=16_000))
        assert agg > comb

    def test_zero_work_zero_cycles(self):
        model = TileModel(TileConfig())
        assert model.total_cycles(TileWork()) == 0.0
