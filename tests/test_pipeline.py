"""Unit tests for the round-level pipeline simulator."""

import pytest

from repro.accel.config import HardwareConfig
from repro.accel.pipeline import PipelineSimulator
from repro.core.scheduler import DiTileScheduler, SchedulerOptions
from repro.ditile import DiTileAccelerator


@pytest.fixture
def plan(medium_graph, medium_spec):
    return DiTileAccelerator().plan(medium_graph, medium_spec)


@pytest.fixture
def simulator():
    return PipelineSimulator(HardwareConfig.small())


class TestPipelineResult:
    def test_makespan_positive(self, simulator, plan):
        result = simulator.run(plan)
        assert result.makespan_cycles > 0
        assert result.num_tiles == plan.factors.tiles_used

    def test_utilization_bounds(self, simulator, plan):
        result = simulator.run(plan)
        assert 0.0 < result.utilization() <= 1.0
        assert 0.0 < result.compute_utilization() <= result.utilization()
        assert result.imbalance() >= 1.0

    def test_snapshot_finish_monotone(self, simulator, plan):
        result = simulator.run(plan)
        finishes = result.snapshot_finish
        assert all(b >= a for a, b in zip(finishes, finishes[1:]))
        assert finishes[-1] == pytest.approx(result.makespan_cycles)

    def test_segments_ordered_and_disjoint(self, simulator, plan):
        result = simulator.run(plan)
        for timeline in result.timelines.values():
            for a, b in zip(timeline.segments, timeline.segments[1:]):
                assert a.end <= b.start + 1e-9
            for segment in timeline.segments:
                assert segment.duration > 0
                assert segment.kind in ("gnn", "rnn", "spatial", "temporal")

    def test_busy_never_exceeds_makespan(self, simulator, plan):
        result = simulator.run(plan)
        for timeline in result.timelines.values():
            assert timeline.busy_cycles() <= result.makespan_cycles + 1e-6


class TestPipelineSemantics:
    def test_balanced_plan_beats_natural(self, medium_graph, medium_spec):
        hw = HardwareConfig.small()
        simulator = PipelineSimulator(hw)
        balanced = DiTileScheduler(
            hw.total_tiles, float(hw.distributed_buffer_bytes)
        ).plan(medium_graph, medium_spec)
        natural = DiTileScheduler(
            hw.total_tiles,
            float(hw.distributed_buffer_bytes),
            SchedulerOptions(enable_balance=False),
        ).plan(medium_graph, medium_spec)
        assert simulator.run(balanced).makespan_cycles <= simulator.run(
            natural
        ).makespan_cycles * 1.001

    def test_reuse_shrinks_makespan(self, medium_graph, medium_spec):
        hw = HardwareConfig.small()
        simulator = PipelineSimulator(hw)
        with_reuse = DiTileScheduler(
            hw.total_tiles, float(hw.distributed_buffer_bytes)
        ).plan(medium_graph, medium_spec)
        without = DiTileScheduler(
            hw.total_tiles,
            float(hw.distributed_buffer_bytes),
            SchedulerOptions(enable_reuse=False),
        ).plan(medium_graph, medium_spec)
        assert simulator.run(with_reuse).makespan_cycles < simulator.run(
            without
        ).makespan_cycles

    def test_temporal_mapping_emits_temporal_segments(
        self, medium_graph, medium_spec
    ):
        hw = HardwareConfig.small()
        plan = DiTileScheduler(
            hw.total_tiles,
            float(hw.distributed_buffer_bytes),
            SchedulerOptions(enable_parallelism=False),
        ).plan(medium_graph, medium_spec)
        result = PipelineSimulator(hw).run(plan)
        kinds = {
            segment.kind
            for timeline in result.timelines.values()
            for segment in timeline.segments
        }
        assert "temporal" in kinds

    def test_spatial_mapping_emits_spatial_segments(self, simulator, plan):
        if plan.factors.vertex_groups <= 1:
            pytest.skip("plan chose a temporal mapping")
        result = simulator.run(plan)
        kinds = {
            segment.kind
            for timeline in result.timelines.values()
            for segment in timeline.segments
        }
        assert "spatial" in kinds

    def test_makespan_same_scale_as_aggregate_simulator(
        self, medium_graph, medium_spec
    ):
        model = DiTileAccelerator()
        plan = model.plan(medium_graph, medium_spec)
        pipeline = PipelineSimulator(model.hardware).run(plan)
        aggregate = model.simulate(medium_graph, medium_spec)
        ratio = pipeline.makespan_cycles / aggregate.execution_cycles
        assert 0.1 <= ratio <= 10.0
