"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.algorithms import (
    ALGORITHMS,
    AlgorithmParams,
    SnapshotQuantities,
    layer_fractions,
)
from repro.core.comm_model import (
    CommunicationModel,
    ParallelFactors,
    WorkloadProfile,
)
from repro.core.tiling import dram_access
from repro.graphs.delta import common_core, snapshot_delta
from repro.graphs.generators import evolve_snapshot, powerlaw_snapshot
from repro.graphs.partition import round_robin_partition
from repro.graphs.snapshot import GraphSnapshot


# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------
@st.composite
def snapshots(draw, max_vertices=30):
    n = draw(st.integers(2, max_vertices))
    max_edges = min(n * (n - 1), 4 * n)
    e = draw(st.integers(0, max_edges))
    seed = draw(st.integers(0, 2**31 - 1))
    return powerlaw_snapshot(n, e, seed=seed)


@st.composite
def profiles(draw):
    return WorkloadProfile(
        gnn_layers=draw(st.integers(1, 3)),
        num_snapshots=draw(st.integers(1, 32)),
        avg_subgraph_vertices=draw(st.floats(1.0, 10_000.0)),
        avg_subgraph_edges=draw(st.floats(0.0, 100_000.0)),
        dissimilarity=draw(st.floats(0.0, 1.0)),
        alpha=draw(st.integers(1, 8)),
    )


# ---------------------------------------------------------------------------
# Graph structure invariants
# ---------------------------------------------------------------------------
class TestSnapshotProperties:
    @settings(max_examples=40, deadline=None)
    @given(snapshots())
    def test_csr_invariants(self, snapshot):
        assert snapshot.indptr[0] == 0
        assert snapshot.indptr[-1] == snapshot.num_edges
        assert np.all(np.diff(snapshot.indptr) >= 0)
        # Rows sorted and duplicate-free.
        for v in range(snapshot.num_vertices):
            row = snapshot.in_neighbors(v)
            assert np.all(np.diff(row) > 0)

    @settings(max_examples=40, deadline=None)
    @given(snapshots())
    def test_degree_sums_equal_edges(self, snapshot):
        assert snapshot.in_degree().sum() == snapshot.num_edges
        assert snapshot.out_degree().sum() == snapshot.num_edges

    @settings(max_examples=30, deadline=None)
    @given(snapshots(), st.integers(0, 3))
    def test_k_hop_monotone_and_bounded(self, snapshot, hops):
        seeds = np.arange(min(3, snapshot.num_vertices))
        smaller = snapshot.k_hop_affected(seeds, hops)
        larger = snapshot.k_hop_affected(seeds, hops + 1)
        assert set(smaller.tolist()) <= set(larger.tolist())
        assert len(larger) <= snapshot.num_vertices

    @settings(max_examples=30, deadline=None)
    @given(snapshots())
    def test_aggregation_preserves_shape_and_finiteness(self, snapshot):
        x = np.ones((snapshot.num_vertices, 3))
        out = snapshot.aggregate(x)
        assert out.shape == x.shape
        assert np.all(np.isfinite(out))


class TestDeltaProperties:
    @settings(max_examples=30, deadline=None)
    @given(snapshots(), st.floats(0.0, 0.6), st.integers(0, 2**31 - 1))
    def test_delta_reconstructs_successor(self, snapshot, dis, seed):
        rng = np.random.default_rng(seed)
        evolved = evolve_snapshot(snapshot, dis, rng)
        delta = snapshot_delta(snapshot, evolved)
        rebuilt = set(snapshot.edge_set())
        rebuilt -= set(zip(delta.removed_src.tolist(), delta.removed_dst.tolist()))
        rebuilt |= set(zip(delta.added_src.tolist(), delta.added_dst.tolist()))
        assert rebuilt == evolved.edge_set()

    @settings(max_examples=30, deadline=None)
    @given(snapshots(), st.floats(0.0, 0.6), st.integers(0, 2**31 - 1))
    def test_core_is_subset_of_both(self, snapshot, dis, seed):
        rng = np.random.default_rng(seed)
        evolved = evolve_snapshot(snapshot, dis, rng)
        core = common_core(snapshot, evolved)
        assert core.edge_set() <= snapshot.edge_set()
        assert core.edge_set() <= evolved.edge_set()


class TestPartitionProperties:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(1, 200), st.integers(1, 16), st.integers(0, 2**31 - 1))
    def test_round_robin_is_partition(self, n, parts, seed):
        rng = np.random.default_rng(seed)
        order = rng.permutation(n)
        partition = round_robin_partition(order, parts, n)
        sizes = partition.sizes()
        assert sizes.sum() == n
        assert sizes.max() - sizes.min() <= 1  # near-equal cardinality


# ---------------------------------------------------------------------------
# Analytic model invariants
# ---------------------------------------------------------------------------
class TestCommModelProperties:
    @settings(max_examples=50, deadline=None)
    @given(profiles(), st.integers(1, 64), st.integers(1, 64))
    def test_all_components_nonnegative(self, profile, ns, nv):
        model = CommunicationModel(profile)
        factors = ParallelFactors.from_groups(
            profile.num_snapshots, profile.avg_subgraph_vertices, ns, nv
        )
        breakdown = model.breakdown(factors)
        assert breakdown.temporal >= 0
        assert breakdown.rf_spatial >= -1e-9
        assert breakdown.reuse >= 0
        assert breakdown.total >= -1e-9

    @settings(max_examples=50, deadline=None)
    @given(profiles())
    def test_redundancy_never_exceeds_spatial(self, profile):
        model = CommunicationModel(profile)
        factors = ParallelFactors.from_groups(
            profile.num_snapshots, profile.avg_subgraph_vertices, 1,
            max(int(profile.avg_subgraph_vertices), 1),
        )
        assert model.redundant_spatial_comm(factors) <= model.spatial_comm(
            factors
        ) + 1e-6

    @settings(max_examples=50, deadline=None)
    @given(profiles(), st.integers(1, 10))
    def test_dram_access_monotone_in_alpha(self, profile, alpha):
        from repro.graphs.dynamic import DynamicGraphStats

        stats = DynamicGraphStats(
            num_snapshots=profile.num_snapshots,
            num_vertices=[int(profile.avg_subgraph_vertices * profile.alpha)]
            * profile.num_snapshots,
            num_edges=[int(profile.avg_subgraph_edges * profile.alpha)]
            * profile.num_snapshots,
            feature_dim=16,
            avg_vertices=profile.avg_subgraph_vertices * profile.alpha,
            avg_edges=profile.avg_subgraph_edges * profile.alpha,
            avg_dissimilarity=profile.dissimilarity,
            dissimilarity=[],
        )
        assert dram_access(stats, alpha) <= dram_access(stats, alpha + 1) + 1e-6


class TestAlgorithmProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        st.integers(1, 10_000),  # vertices
        st.integers(0, 100_000),  # edges
        st.floats(0.0, 1.0),  # dissimilarity
        st.integers(0, 1000),  # added
        st.integers(0, 1000),  # removed
        st.integers(1, 3),  # layers
    )
    def test_fraction_invariants(self, v, e, dis, added, removed, layers):
        q = SnapshotQuantities(2, v, e, dis, added, removed)
        params = AlgorithmParams()
        ditile = layer_fractions("ditile", q, layers, params)
        for algorithm in ALGORITHMS:
            fractions = layer_fractions(algorithm, q, layers, params)
            assert len(fractions) == layers
            for f, d in zip(fractions, ditile):
                assert 0.0 <= f <= 1.0
                # DiTile never does more work than any other algorithm.
                assert d <= f + 1e-12


class TestTilingProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        vertices=st.integers(10, 2000),
        degree=st.floats(1.0, 20.0),
        snapshots=st.integers(1, 6),
        buffer_kib=st.integers(8, 4096),
        feature_dim=st.integers(4, 512),
    )
    def test_chosen_alpha_is_minimal_feasible(
        self, vertices, degree, snapshots, buffer_kib, feature_dim
    ):
        from repro.core.tiling import (
            subgraph_data_volume,
            subgraph_tiling,
        )
        from repro.graphs.dynamic import DynamicGraphStats

        edges = int(vertices * degree)
        stats = DynamicGraphStats(
            num_snapshots=snapshots,
            num_vertices=[vertices] * snapshots,
            num_edges=[edges] * snapshots,
            feature_dim=feature_dim,
            avg_vertices=float(vertices),
            avg_edges=float(edges),
            avg_dissimilarity=0.1,
            dissimilarity=[0.1] * max(snapshots - 1, 0),
        )
        buffer_bytes = buffer_kib * 1024
        result = subgraph_tiling(stats, buffer_bytes, feature_dim=feature_dim)
        if result.fits_buffer:
            # Feasible and minimal: alpha fits, alpha-1 does not (or is 0).
            assert (
                subgraph_data_volume(stats, result.alpha, feature_dim)
                <= buffer_bytes
            )
            if result.alpha > 1:
                assert (
                    subgraph_data_volume(stats, result.alpha - 1, feature_dim)
                    > buffer_bytes
                )


class TestPersistenceProperties:
    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        snapshots=st.integers(1, 4),
        with_features=st.booleans(),
    )
    def test_npz_round_trip(self, tmp_path_factory, seed, snapshots, with_features):
        from repro.graphs.generators import generate_dynamic_graph
        from repro.graphs.io import load_dynamic_graph, save_dynamic_graph

        graph = generate_dynamic_graph(
            30, 100, snapshots, feature_dim=5, seed=seed,
            with_features=with_features,
        )
        path = tmp_path_factory.mktemp("npz") / "graph.npz"
        save_dynamic_graph(graph, path)
        loaded = load_dynamic_graph(path)
        for original, restored in zip(graph, loaded):
            assert original == restored
            if with_features:
                np.testing.assert_array_equal(
                    original.features, restored.features
                )


class TestSchedulerProperties:
    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        dissimilarity=st.floats(0.0, 0.6),
        tiles=st.sampled_from([4, 16, 64]),
    )
    def test_plan_invariants(self, seed, dissimilarity, tiles):
        from repro.core.plan import DGNNSpec
        from repro.core.scheduler import DiTileScheduler
        from repro.graphs.generators import generate_dynamic_graph

        graph = generate_dynamic_graph(
            60, 240, 4, dissimilarity=dissimilarity, feature_dim=8, seed=seed
        )
        spec = DGNNSpec.classic(8, hidden_dim=8)
        plan = DiTileScheduler(tiles, 4 * 2**20).plan(graph, spec)
        assert plan.tiling.alpha >= 1
        assert 1 <= plan.factors.tiles_used <= tiles
        assert plan.comm.total >= -1e-9
        assert plan.workload.partition.sizes().sum() == 60
        assert 0 < plan.workload.utilization <= 1.0
