"""Unit tests for repro.core.redundancy."""

import numpy as np

from repro.core.redundancy import RedundancyAnalysis
from repro.graphs.dynamic import DynamicGraph
from repro.graphs.partition import contiguous_vertex_partition
from repro.graphs.snapshot import GraphSnapshot


def _snap(edges, n=6):
    return GraphSnapshot.from_edges(n, edges)


class TestAnalyze:
    def test_cold_start_is_fully_affected(self, small_graph):
        analysis = RedundancyAnalysis.analyze(small_graph, 2)
        first = analysis[0]
        assert first.dissimilarity == 1.0
        assert first.affected_fraction(0) == 1.0
        assert first.reusable_rows(1) == 0

    def test_transition_counts(self):
        before = _snap([(0, 1), (2, 3), (4, 5)])
        after = _snap([(0, 1), (0, 3), (2, 3), (4, 5)])  # vertex 3 changed
        analysis = RedundancyAnalysis.analyze(DynamicGraph([before, after]), 2)
        transition = analysis[1]
        np.testing.assert_array_equal(transition.changed, [3])
        # Layer 1 affected: 3 plus out-neighbours of 3 (none) -> {3}.
        np.testing.assert_array_equal(transition.affected_per_layer[0], [3])
        assert transition.reusable_rows(0) == 5

    def test_affected_grows_per_layer(self, small_graph):
        analysis = RedundancyAnalysis.analyze(small_graph, 3)
        for transition in analysis.transitions[1:]:
            sizes = [len(a) for a in transition.affected_per_layer]
            assert sizes == sorted(sizes)

    def test_len_and_getitem(self, small_graph):
        analysis = RedundancyAnalysis.analyze(small_graph, 2)
        assert len(analysis) == small_graph.num_snapshots
        assert analysis[2].timestamp == 2

    def test_avg_affected_fraction(self, small_graph):
        analysis = RedundancyAnalysis.analyze(small_graph, 2)
        fraction = analysis.avg_affected_fraction(1)
        assert 0.0 <= fraction <= 1.0
        with_cold = analysis.avg_affected_fraction(1, skip_first=False)
        assert with_cold >= fraction

    def test_identical_snapshots_have_no_affected(self):
        snapshot = _snap([(0, 1), (1, 2)])
        analysis = RedundancyAnalysis.analyze(
            DynamicGraph([snapshot, snapshot]), 2
        )
        assert analysis.avg_affected_fraction(0) == 0.0
        assert analysis.avg_affected_fraction(1) == 0.0


class TestPerTile:
    def test_counts_by_partition(self):
        before = _snap([(0, 1), (2, 3), (4, 5)])
        after = _snap([(0, 1), (0, 3), (2, 3), (4, 5)])
        analysis = RedundancyAnalysis.analyze(DynamicGraph([before, after]), 1)
        partition = contiguous_vertex_partition(6, 2)  # {0,1,2} {3,4,5}
        counts = analysis.per_tile_affected(partition, 1)
        np.testing.assert_array_equal(counts, [0, 1])

    def test_cold_start_spreads_everywhere(self, small_graph):
        analysis = RedundancyAnalysis.analyze(small_graph, 2)
        partition = contiguous_vertex_partition(40, 4)
        counts = analysis.per_tile_affected(partition, 0)
        np.testing.assert_array_equal(counts, [10, 10, 10, 10])
