"""Golden-range regression guard.

Loads the expected headline-metric ranges from
``tests/fixtures/golden_ranges.json`` and verifies the current code still
produces numbers inside them.  The ranges are wide on purpose: this test
exists to catch silent calibration drift (a changed constant flipping who
wins, or an inverted ratio), not run-to-run noise.
"""

import json
from pathlib import Path

import pytest

from repro.accel.area import AreaModel
from repro.accel.config import HardwareConfig
from repro.experiments.runner import ExperimentConfig, ExperimentRunner

FIXTURE = Path(__file__).parent / "fixtures" / "golden_ranges.json"


@pytest.fixture(scope="module")
def golden():
    return json.loads(FIXTURE.read_text())


@pytest.fixture(scope="module")
def results(golden):
    config = ExperimentConfig(
        scale=golden["scale"],
        snapshots=golden["snapshots"],
        seed=golden["seed"],
    )
    return ExperimentRunner(config).compare(golden["dataset"])


class TestHeadlineRatios:
    @pytest.mark.parametrize(
        "baseline", ["ReaDy", "DGNN-Booster", "RACE", "MEGA"]
    )
    def test_ratios_in_golden_range(self, golden, results, baseline):
        ditile = results["DiTile-DGNN"]
        other = results[baseline]
        measured = {
            "ops": other.total_macs / ditile.total_macs,
            "dram": other.dram_bytes / ditile.dram_bytes,
            "time": other.execution_cycles / ditile.execution_cycles,
            "energy": other.energy_joules / ditile.energy_joules,
        }
        for metric, (low, high) in golden["ratios_vs_ditile"][baseline].items():
            assert low <= measured[metric] <= high, (
                f"{baseline} {metric} ratio {measured[metric]:.2f} left the "
                f"golden range [{low}, {high}] — calibration drift?"
            )


class TestAreaGolden:
    def test_chip_breakdown_in_range(self, golden):
        breakdown = AreaModel().report(HardwareConfig.small()).chip_breakdown()
        for component, (low, high) in golden["area_chip_percent"].items():
            assert low <= breakdown[component] <= high, component
