"""Tests for repro.resilience: faults, policies, chaos, degraded mode."""

import math

import pytest

from repro.accel.config import HardwareConfig
from repro.accel.noc import NoCModel, NoCTraffic
from repro.accel.simulator import AcceleratorSimulator
from repro.core.plan import DGNNSpec
from repro.ditile import DiTileAccelerator
from repro.experiments.resilience import fault_sweep
from repro.graphs.continuous import EdgeEvent
from repro.graphs.generators import generate_dynamic_graph
from repro.resilience import (
    BreakerConfig,
    ChaosSchedule,
    CircuitBreaker,
    FaultModel,
    FaultSpecError,
    InjectedFault,
    RetryPolicy,
    parse_fault_spec,
    run_chaos,
)
from repro.serving import (
    ServiceConfig,
    StreamingService,
    WindowedIngestor,
    event_fault,
    serve_offline,
    synthetic_event_stream,
)
from repro.serving.executor import WindowExecutor

HW = HardwareConfig.small()
SPEC = DGNNSpec(gcn_dims=(8, 8), rnn_hidden_dim=8)


# ---------------------------------------------------------------------------
# FaultModel (resilience/faults.py)
# ---------------------------------------------------------------------------
class TestFaultModel:
    def test_none_is_clean(self):
        faults = FaultModel.none()
        assert faults.is_clean
        assert faults.describe() == "fault-free"
        assert faults.counts() == {
            "failed_tiles": 0,
            "failed_links": 0,
            "failed_relinks": 0,
        }

    def test_sample_deterministic(self):
        a = FaultModel.sample(HW, tile_rate=0.2, link_rate=0.2, seed=5)
        b = FaultModel.sample(HW, tile_rate=0.2, link_rate=0.2, seed=5)
        assert a == b

    def test_sample_nested_across_rates(self):
        # Same seed, higher rates: the fault set only ever grows.
        lo = FaultModel.sample(
            HW, tile_rate=0.05, link_rate=0.1, relink_rate=0.1, seed=3
        )
        hi = FaultModel.sample(
            HW, tile_rate=0.2, link_rate=0.4, relink_rate=0.4, seed=3
        )
        assert lo.failed_tiles <= hi.failed_tiles
        assert lo.failed_links <= hi.failed_links
        assert lo.failed_relinks <= hi.failed_relinks

    def test_sample_rate_validation(self):
        with pytest.raises(ValueError, match="tile_rate"):
            FaultModel.sample(HW, tile_rate=1.5)

    def test_link_failed_normalizes_and_covers_dead_tiles(self):
        faults = FaultModel(failed_tiles=frozenset({3}), failed_links=frozenset({(0, 1)}))
        assert faults.link_failed(0, 1) and faults.link_failed(1, 0)
        # Any link incident to a dead tile is down, wire state aside.
        assert faults.link_failed(3, 7) and faults.link_failed(7, 3)
        assert not faults.link_failed(4, 5)

    def test_live_tiles_rejects_dead_array(self):
        all_dead = FaultModel(failed_tiles=frozenset(range(HW.total_tiles)))
        with pytest.raises(ValueError, match="every tile"):
            all_dead.live_tiles(HW)

    def test_tile_remap_nearest_live_lower_first(self):
        faults = FaultModel(failed_tiles=frozenset({5}))
        assert faults.tile_remap(HW) == {5: 4}  # tie 4 vs 6 -> lower index
        run = FaultModel(failed_tiles=frozenset({0, 1}))
        remap = run.tile_remap(HW)
        assert remap == {0: 2, 1: 2}
        assert all(t not in run.failed_tiles for t in remap.values())


class TestParseFaultSpec:
    def test_explicit(self):
        faults = parse_fault_spec("tiles=3|7,links=0-1|4-8,relinks=2")
        assert faults.failed_tiles == {3, 7}
        assert faults.failed_links == {(0, 1), (4, 8)}
        assert faults.failed_relinks == {2}

    def test_sampled_matches_sample(self):
        faults = parse_fault_spec("rate=0.2,seed=11", HW)
        assert faults == FaultModel.sample(
            HW, tile_rate=0.05, link_rate=0.2, relink_rate=0.2, seed=11
        )

    @pytest.mark.parametrize(
        "spec, message",
        [
            ("", "empty"),
            ("bogus", "key=value"),
            ("rate=0.1,tiles=3", "mix"),
            ("tiles=3,seed=7", "seed only applies"),
            ("frobnicate=1", "unknown"),
            ("rate=abc", "bad numeric"),
            ("links=0-1-2", "srcTile-dstTile"),
            ("seed=4", "neither"),
        ],
    )
    def test_errors(self, spec, message):
        with pytest.raises(FaultSpecError, match=message):
            parse_fault_spec(spec, HW)

    def test_sampled_needs_hardware(self):
        with pytest.raises(FaultSpecError, match="hardware"):
            parse_fault_spec("rate=0.1")


# ---------------------------------------------------------------------------
# Retry + circuit breaker (resilience/policies.py)
# ---------------------------------------------------------------------------
class TestRetryPolicy:
    def test_backoff_exponential(self):
        policy = RetryPolicy(max_attempts=4, backoff_s=0.01, multiplier=2.0)
        assert policy.backoff(1) == pytest.approx(0.01)
        assert policy.backoff(2) == pytest.approx(0.02)
        assert policy.backoff(3) == pytest.approx(0.04)
        assert policy.backoff(0) == 0.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"backoff_s": -1.0},
            {"multiplier": 0.5},
            {"deadline_s": 0.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)


class TestCircuitBreaker:
    def test_trips_after_threshold_invocations(self):
        breaker = CircuitBreaker(BreakerConfig(threshold=3, cooldown=2))
        for _ in range(2):
            breaker.record_invocation()
        assert breaker.allow() and breaker.trips == 0
        breaker.record_invocation()
        assert breaker.trips == 1 and not breaker.allow() and breaker.is_open

    def test_cooldown_counts_down_to_half_open(self):
        breaker = CircuitBreaker(BreakerConfig(threshold=1, cooldown=2))
        breaker.record_invocation()
        assert not breaker.allow()
        breaker.record_short_circuit()
        assert not breaker.allow()
        breaker.record_short_circuit()
        assert breaker.allow()  # half-open: one real resolution allowed

    def test_success_resets_the_storm_counter(self):
        breaker = CircuitBreaker(BreakerConfig(threshold=2, cooldown=1))
        breaker.record_invocation()
        breaker.record_success()
        breaker.record_invocation()
        assert breaker.trips == 0 and breaker.allow()


# ---------------------------------------------------------------------------
# Chaos schedule (resilience/chaos.py)
# ---------------------------------------------------------------------------
class TestChaosSchedule:
    def test_validation(self):
        with pytest.raises(ValueError, match="crash_rate"):
            ChaosSchedule(crash_rate=1.5)
        with pytest.raises(ValueError, match="latency_s"):
            ChaosSchedule(latency_s=-1.0)

    def test_quiet(self):
        assert ChaosSchedule(seed=1).is_quiet
        assert not ChaosSchedule(seed=1, crash_rate=0.1).is_quiet
        assert "quiet" in ChaosSchedule(seed=1).describe()
        assert "crash=0.5" in ChaosSchedule(seed=1, crash_rate=0.5).describe()

    def test_decisions_deterministic_and_site_keyed(self):
        a = ChaosSchedule(seed=9, crash_rate=0.5, latency_rate=0.5, latency_s=0.01)
        b = ChaosSchedule(seed=9, crash_rate=0.5, latency_rate=0.5, latency_s=0.01)
        sites = [(w, t) for w in range(8) for t in range(3)]
        assert [a.crashes(w, t) for w, t in sites] == [
            b.crashes(w, t) for w, t in sites
        ]
        assert [a.latency(w, t) for w, t in sites] == [
            b.latency(w, t) for w, t in sites
        ]
        # A different seed produces a different decision stream.
        c = ChaosSchedule(seed=10, crash_rate=0.5)
        assert [a.crashes(w, t) for w, t in sites] != [
            c.crashes(w, t) for w, t in sites
        ]

    def test_inject_splices_malformed_events_only(self):
        schedule = ChaosSchedule(seed=2, poison_rate=0.3)
        events = [EdgeEvent(float(t), t % 4, (t + 1) % 4, "add") for t in range(40)]
        out = list(schedule.inject(events, num_vertices=4))
        poison = [e for e in out if event_fault(e, 4) is not None]
        assert len(out) == len(events) + len(poison)
        assert 0 < len(poison) < len(events)
        assert [e for e in out if event_fault(e, 4) is None] == events
        # Both malformed kinds appear at this rate/seed.
        assert any(not math.isfinite(e.time) for e in poison)
        assert any(e.src >= 4 for e in poison)


# ---------------------------------------------------------------------------
# Degraded NoC + simulator (accel/noc.py, accel/simulator.py)
# ---------------------------------------------------------------------------
FAULTS = FaultModel.sample(HW, tile_rate=0.1, link_rate=0.3, relink_rate=0.3, seed=7)


class TestDegradedNoC:
    def test_clean_faults_are_dropped(self):
        clean = NoCModel(HW)
        with_clean = NoCModel(HW, faults=FaultModel.none())
        assert with_clean.faults is None
        for regular in (True, False):
            assert with_clean.avg_hops(regular) == clean.avg_hops(regular)
            assert with_clean.parallel_paths(regular) == clean.parallel_paths(regular)

    @pytest.mark.parametrize("topology", ["ditile", "mesh", "ring", "crossbar"])
    def test_degradation_never_improves(self, topology):
        from dataclasses import replace

        from repro.accel.config import NoCConfig

        hw = (
            HW
            if topology == "ditile"
            else replace(HW, noc=NoCConfig(topology=topology))
        )
        clean = NoCModel(hw)
        degraded = NoCModel(hw, faults=FAULTS)
        for regular in (True, False):
            assert degraded.avg_hops(regular) >= clean.avg_hops(regular)
            assert degraded.parallel_paths(regular) <= clean.parallel_paths(regular)

    def test_transfer_cycles_monotone_in_faults(self):
        traffic = NoCTraffic(
            temporal_bytes=1e5, spatial_bytes=1e5, reuse_bytes=5e4
        )
        cycles = []
        for rate in (0.0, 0.1, 0.2, 0.4):
            faults = FaultModel.sample(
                HW, tile_rate=rate / 4, link_rate=rate, relink_rate=rate, seed=7
            )
            cycles.append(NoCModel(HW, faults=faults).transfer_cycles(traffic))
        assert cycles == sorted(cycles)


class TestDegradedSimulator:
    def _graph(self):
        return generate_dynamic_graph(48, 160, 3, seed=5)

    def test_clean_run_has_no_degraded_report(self):
        model = DiTileAccelerator(HW)
        result = model.simulate(self._graph(), SPEC)
        assert result.degraded is None

    def test_clean_faults_bit_identical(self):
        model = DiTileAccelerator(HW)
        graph = self._graph()
        base = model.simulate(graph, SPEC)
        with_clean = model.simulate(graph, SPEC, faults=FaultModel.none())
        assert with_clean.execution_cycles == base.execution_cycles
        assert with_clean.degraded is None

    def test_degraded_report(self):
        model = DiTileAccelerator(HW)
        result = model.simulate(self._graph(), SPEC, faults=FAULTS)
        deg = result.degraded
        assert deg is not None
        assert deg.failed_tiles == len(FAULTS.failed_tiles)
        assert deg.live_tiles == HW.total_tiles - len(FAULTS.failed_tiles)
        assert deg.slowdown >= 1.0
        assert deg.degraded_cycles == pytest.approx(result.execution_cycles)
        assert deg.compute_stretch >= 1.0
        assert all(v >= 0.0 for v in deg.reroute_penalty_cycles.values())

    def test_cycles_monotone_in_fault_rate(self):
        model = DiTileAccelerator(HW)
        graph = self._graph()
        cycles = []
        for rate in (0.0, 0.1, 0.25):
            faults = FaultModel.sample(
                HW, tile_rate=rate, link_rate=rate, relink_rate=rate, seed=13
            )
            cycles.append(model.simulate(graph, SPEC, faults=faults).execution_cycles)
        assert cycles == sorted(cycles)


# ---------------------------------------------------------------------------
# Fault sweep (experiments/resilience.py)
# ---------------------------------------------------------------------------
class TestFaultSweep:
    def test_monotone_and_ditile_degrades_no_worse(self):
        graph = generate_dynamic_graph(48, 160, 3, seed=5)
        fig = fault_sweep(graph, SPEC, rates=(0.0, 0.1, 0.3), seed=11, hardware=HW)
        assert fig.headers[0] == "rate"
        ditile_slow = [float(row[3]) for row in fig.rows]
        mesh_slow = [float(row[5]) for row in fig.rows]
        assert ditile_slow == sorted(ditile_slow)
        assert mesh_slow == sorted(mesh_slow)
        # Ring + Re-Link degrades no worse than the mesh at every rate.
        for d, m in zip(ditile_slow, mesh_slow):
            assert d <= m + 1e-9


# ---------------------------------------------------------------------------
# Ingest hardening (serving/ingest.py)
# ---------------------------------------------------------------------------
class TestIngestValidation:
    @pytest.mark.parametrize(
        "event, reason",
        [
            (EdgeEvent(float("nan"), 0, 1, "add"), "non-finite"),
            (EdgeEvent(float("inf"), 0, 1, "add"), "non-finite"),
            (EdgeEvent(-1.0, 0, 1, "add"), "negative"),
            (EdgeEvent(1.0, 16, 1, "add"), "outside"),
            (EdgeEvent(1.0, 1, 16, "add"), "outside"),
        ],
    )
    def test_event_fault(self, event, reason):
        assert reason in event_fault(event, 16)

    def test_well_formed(self):
        assert event_fault(EdgeEvent(0.0, 0, 15, "add"), 16) is None

    def test_strict_mode_raises_with_reason(self):
        ingestor = WindowedIngestor(16, window=1.0)
        events = [EdgeEvent(float("nan"), 0, 1, "add")]
        with pytest.raises(ValueError, match="malformed event.*non-finite"):
            list(ingestor.windows(events))

    def test_quarantine_dead_letters_and_continues(self):
        ingestor = WindowedIngestor(16, window=1.0, quarantine=True)
        events = [
            EdgeEvent(0.1, 0, 1, "add"),
            EdgeEvent(float("nan"), 2, 3, "add"),
            EdgeEvent(0.2, 99, 3, "add"),
            EdgeEvent(0.3, 4, 5, "add"),
        ]
        windows = list(ingestor.windows(events))
        assert ingestor.quarantined_events == 2
        assert [r.position for r in ingestor.rejected] == [1, 2]
        assert "non-finite" in ingestor.rejected[0].reason
        assert "outside" in ingestor.rejected[1].reason
        # The two good events still landed in the (single) window.
        assert sum(w.num_events for w in windows) == 2

    def test_poison_cannot_anchor_the_origin(self):
        # A leading malformed event must not set the window origin.
        ingestor = WindowedIngestor(16, window=1.0, quarantine=True)
        events = [
            EdgeEvent(-5.0, 0, 1, "add"),
            EdgeEvent(2.0, 0, 1, "add"),
        ]
        list(ingestor.windows(events))
        assert ingestor.origin == 2.0

    def test_empty_stream_serves_one_window(self):
        ingestor = WindowedIngestor(16, window=1.0, quarantine=True)
        windows = list(ingestor.windows([]))
        assert len(windows) == 1 and windows[0].num_events == 0

    def test_duplicate_timestamps_share_a_window(self):
        ingestor = WindowedIngestor(16, window=1.0, origin=0.0)
        events = [EdgeEvent(0.5, s, s + 1, "add") for s in range(4)]
        windows = list(ingestor.windows(events))
        assert len(windows) == 1
        assert windows[0].num_events == 4
        assert windows[0].snapshot.num_edges == 4


# ---------------------------------------------------------------------------
# Executor shutdown (serving/executor.py)
# ---------------------------------------------------------------------------
class TestExecutorShutdown:
    @pytest.mark.parametrize("workers", [0, 2])
    def test_idempotent(self, workers):
        pool = WindowExecutor(workers)
        pool.shutdown()
        pool.shutdown()  # second call is a no-op
        pool.shutdown(wait=False, cancel_pending=True)

    @pytest.mark.parametrize("workers", [0, 2])
    def test_submit_after_shutdown_raises(self, workers):
        pool = WindowExecutor(workers)
        pool.shutdown()
        with pytest.raises(RuntimeError, match="shut down"):
            pool.submit(lambda: 1)

    def test_context_manager_after_explicit_shutdown(self):
        with WindowExecutor(1) as pool:
            assert pool.submit(lambda: 41 + 1).result() == 42
            pool.shutdown()
        # __exit__ re-invoked shutdown without error


# ---------------------------------------------------------------------------
# Serving under chaos (resilience/chaos.py + serving/service.py)
# ---------------------------------------------------------------------------
def _stream():
    return synthetic_event_stream(num_vertices=32, num_events=150, seed=7)


def _window(stream, parts=5):
    first, last = stream.time_span
    return (last - first) / parts


class TestServingResilience:
    def test_clean_run_counters_all_zero(self):
        stream = _stream()
        report = StreamingService(
            config=ServiceConfig(window=_window(stream))
        ).serve(stream, SPEC)
        stats = report.stats
        assert stats.retries == 0
        assert stats.windows_failed == 0
        assert stats.shed_windows == 0
        assert stats.quarantined_events == 0
        assert stats.plan_breaker_hits == 0
        assert stats.breaker_trips == 0
        assert stats.failures == []

    def test_chaos_run_is_byte_identical_across_runs(self):
        stream = _stream()
        schedule = ChaosSchedule(
            seed=3, crash_rate=0.3, latency_rate=0.2, latency_s=0.0005,
            poison_rate=0.03,
        )
        config = ServiceConfig(
            window=_window(stream),
            retry=RetryPolicy(max_attempts=4, backoff_s=0.0),
            quarantine=True,
        )
        _, first = run_chaos(stream, SPEC, schedule, config=config)
        _, second = run_chaos(stream, SPEC, schedule, config=config)
        assert first.to_json() == second.to_json()
        assert first.retries > 0  # the schedule actually injected crashes

    def test_chaos_results_match_the_clean_run_for_served_windows(self):
        # Crashes delay windows but never change what they compute.
        stream = _stream()
        clean = StreamingService(
            config=ServiceConfig(window=_window(stream))
        ).serve(stream, SPEC)
        schedule = ChaosSchedule(seed=5, crash_rate=0.4)
        config = ServiceConfig(
            window=_window(stream),
            retry=RetryPolicy(max_attempts=6, backoff_s=0.0),
        )
        report, chaos = run_chaos(stream, SPEC, schedule, config=config)
        assert chaos.windows_failed == 0
        assert [r.execution_cycles for r in report.results] == [
            r.execution_cycles for r in clean.results
        ]

    def test_exhausted_retry_budget_records_failures(self):
        stream = _stream()
        schedule = ChaosSchedule(seed=1, crash_rate=1.0)
        config = ServiceConfig(
            window=_window(stream),
            retry=RetryPolicy(max_attempts=2, backoff_s=0.0),
        )
        report, chaos = run_chaos(stream, SPEC, schedule, config=config)
        assert chaos.windows == 0  # every window failed permanently
        assert chaos.windows_failed > 0
        assert all(f["attempts"] == 2 for f in chaos.failures)
        assert all("InjectedFault" in f["error"] for f in chaos.failures)
        assert report.stats.retries == chaos.retries

    def test_crash_without_retry_policy_propagates(self):
        stream = _stream()
        config = ServiceConfig(
            window=_window(stream), chaos=ChaosSchedule(seed=1, crash_rate=1.0)
        )
        with pytest.raises(InjectedFault):
            StreamingService(config=config).serve(stream, SPEC)

    def test_breaker_short_circuits_a_replan_storm(self):
        stream = _stream()
        config = ServiceConfig(
            window=_window(stream, parts=10),
            breaker=BreakerConfig(threshold=1, cooldown=2),
            plan_cache_capacity=1,
            drift_threshold=1e-9,
        )
        report = StreamingService(config=config).serve(stream, SPEC)
        stats = report.stats
        assert stats.breaker_trips > 0
        assert stats.plan_breaker_hits > 0
        assert "breaker" in [r.plan_decision for r in stats.records]
        # Short-circuited windows are still served.
        assert stats.windows == len(report.results)

    def test_faults_forwarded_to_every_window(self):
        stream = _stream()
        model = DiTileAccelerator(HW)
        faults = FaultModel.sample(HW, link_rate=0.3, seed=11)
        config = ServiceConfig(window=_window(stream), faults=faults)
        online = StreamingService(model, config).serve(stream, SPEC)
        assert all(r.degraded is not None for r in online.results)
        offline = serve_offline(stream, SPEC, model=model, config=config)
        assert [r.execution_cycles for r in online.results] == [
            r.execution_cycles for r in offline
        ]
