"""Unit tests for repro.models.rnn (LSTM, GRU)."""

import numpy as np
import pytest

from repro.models.rnn import GRUCell, LSTMCell, RNNState, sigmoid


class TestSigmoid:
    def test_midpoint(self):
        assert sigmoid(np.array([0.0]))[0] == pytest.approx(0.5)

    def test_saturation_is_stable(self):
        values = sigmoid(np.array([-1000.0, 1000.0]))
        assert values[0] == pytest.approx(0.0, abs=1e-12)
        assert values[1] == pytest.approx(1.0, abs=1e-12)
        assert np.all(np.isfinite(values))

    def test_symmetry(self, rng):
        x = rng.standard_normal(100)
        np.testing.assert_allclose(sigmoid(x) + sigmoid(-x), 1.0, atol=1e-12)


class TestLSTMCell:
    def test_create_dims(self):
        cell = LSTMCell.create(6, 4, seed=0)
        assert cell.in_dim == 6
        assert cell.hidden_dim == 4
        assert cell.matmul_count() == 8

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            LSTMCell(np.zeros((3, 4, 5)), np.zeros((4, 5, 5)))
        with pytest.raises(ValueError):
            LSTMCell(np.zeros((4, 4, 5)), np.zeros((4, 4, 4)))

    def test_initial_state_zero(self):
        cell = LSTMCell.create(3, 5, seed=1)
        state = cell.initial_state(7)
        assert state.hidden.shape == (7, 5)
        assert state.cell.shape == (7, 5)
        assert not state.hidden.any()

    def test_step_shapes_and_bounds(self, rng):
        cell = LSTMCell.create(3, 5, seed=2)
        state = cell.step(rng.standard_normal((7, 3)), cell.initial_state(7))
        assert state.hidden.shape == (7, 5)
        # h = o * tanh(c) is bounded by (-1, 1).
        assert np.all(np.abs(state.hidden) < 1.0)

    def test_step_requires_cell_state(self, rng):
        cell = LSTMCell.create(3, 5, seed=3)
        with pytest.raises(ValueError):
            cell.step(rng.standard_normal((2, 3)), RNNState(np.zeros((2, 5))))

    def test_state_evolves_under_constant_input(self, rng):
        # The property that makes exact cross-snapshot RNN reuse impossible
        # (DESIGN.md §2): identical inputs still advance the state.
        cell = LSTMCell.create(3, 5, seed=4)
        z = rng.standard_normal((4, 3))
        first = cell.step(z, cell.initial_state(4))
        second = cell.step(z, first)
        assert not np.allclose(first.hidden, second.hidden)

    def test_rows_are_independent(self, rng):
        cell = LSTMCell.create(3, 4, seed=5)
        z = rng.standard_normal((6, 3))
        full = cell.step(z, cell.initial_state(6))
        half = cell.step(z[:3], cell.initial_state(3))
        np.testing.assert_allclose(full.hidden[:3], half.hidden)

    def test_matches_manual_equations(self, rng):
        # Eq. 4 computed by hand for a single row.
        cell = LSTMCell.create(2, 3, seed=6)
        z = rng.standard_normal((1, 2))
        h_prev = rng.standard_normal((1, 3))
        c_prev = rng.standard_normal((1, 3))
        state = cell.step(z, RNNState(h_prev.copy(), c_prev.copy()))
        i = sigmoid(z @ cell.w_input[0] + h_prev @ cell.w_hidden[0])
        f = sigmoid(z @ cell.w_input[1] + h_prev @ cell.w_hidden[1])
        o = sigmoid(z @ cell.w_input[2] + h_prev @ cell.w_hidden[2])
        c = f * c_prev + i * np.tanh(z @ cell.w_input[3] + h_prev @ cell.w_hidden[3])
        np.testing.assert_allclose(state.cell, c, atol=1e-12)
        np.testing.assert_allclose(state.hidden, o * np.tanh(c), atol=1e-12)


class TestGRUCell:
    def test_create_dims(self):
        cell = GRUCell.create(6, 4, seed=0)
        assert cell.in_dim == 6
        assert cell.hidden_dim == 4
        assert cell.matmul_count() == 6

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            GRUCell(np.zeros((2, 4, 5)), np.zeros((3, 5, 5)))

    def test_initial_state_has_no_cell(self):
        cell = GRUCell.create(3, 5, seed=1)
        assert cell.initial_state(4).cell is None

    def test_step_shapes(self, rng):
        cell = GRUCell.create(3, 5, seed=2)
        state = cell.step(rng.standard_normal((7, 3)), cell.initial_state(7))
        assert state.hidden.shape == (7, 5)

    def test_update_gate_interpolates(self, rng):
        # h_new is a convex combination of h_prev and the candidate, so it
        # stays within their elementwise envelope when both are bounded.
        cell = GRUCell.create(3, 5, seed=3)
        h_prev = np.clip(rng.standard_normal((6, 5)), -0.99, 0.99)
        state = cell.step(rng.standard_normal((6, 3)), RNNState(h_prev.copy()))
        assert np.all(np.abs(state.hidden) <= 1.0)


class TestRNNState:
    def test_copy_is_deep(self):
        state = RNNState(np.zeros((2, 3)), np.zeros((2, 3)))
        clone = state.copy()
        clone.hidden[0, 0] = 5.0
        assert state.hidden[0, 0] == 0.0

    def test_copy_without_cell(self):
        state = RNNState(np.zeros((2, 3)))
        assert state.copy().cell is None
