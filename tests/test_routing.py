"""Unit tests for the traffic-matrix NoC router."""

from dataclasses import replace

import numpy as np
import pytest

from repro.accel.config import HardwareConfig, NoCConfig
from repro.accel.routing import (
    LinkLoadReport,
    TrafficMatrixRouter,
    spatial_traffic_matrix,
)
from repro.ditile import DiTileAccelerator


def _hw(topology, relink=True, rows=4, cols=4):
    hw = HardwareConfig(grid_rows=rows, grid_cols=cols)
    return replace(hw, noc=NoCConfig(topology=topology, relink_enabled=relink))


class TestRoutes:
    def test_self_route(self):
        router = TrafficMatrixRouter(_hw("mesh"))
        assert router.route(5, 5, regular=False) == [5]

    def test_mesh_xy_routing(self):
        router = TrafficMatrixRouter(_hw("mesh"))
        # (0,0) -> (1,1): X first to tile 1, then Y to tile 5.
        assert router.route(0, 5, regular=False) == [0, 1, 5]

    def test_crossbar_single_hop(self):
        router = TrafficMatrixRouter(_hw("crossbar"))
        assert router.route(0, 15, regular=False) == [0, 15]

    def test_ditile_row_ring_for_regular(self):
        router = TrafficMatrixRouter(_hw("ditile"))
        # Same row 0: tiles 0..3 form the ring; 0 -> 3 wraps backwards.
        route = router.route(0, 3, regular=True)
        assert route == [0, 3]

    def test_ditile_relink_bypass_vertical(self):
        router = TrafficMatrixRouter(_hw("ditile", relink=True))
        # Same column, distant rows: Re-Link gives a single hop.
        assert router.route(0, 12, regular=False) == [0, 12]

    def test_ditile_vertical_ring_without_relink(self):
        router = TrafficMatrixRouter(_hw("ditile", relink=False))
        route = router.route(0, 8, regular=False)
        assert len(route) > 2  # must walk the column ring

    def test_ditile_off_dimension_route(self):
        router = TrafficMatrixRouter(_hw("ditile"))
        route = router.route(0, 13, regular=False)  # (0,0) -> (3,1)
        assert route[0] == 0 and route[-1] == 13
        # Routes through the corner tile of row 0, column 1.
        assert 1 in route

    def test_ring_topology_route(self):
        router = TrafficMatrixRouter(_hw("ring"))
        route = router.route(0, 15, regular=False)
        assert route == [0, 15]  # wrap-around is 1 hop on a 16-ring

    def test_routes_follow_physical_adjacency_on_mesh(self):
        router = TrafficMatrixRouter(_hw("mesh"))
        rng = np.random.default_rng(0)
        for _ in range(20):
            src, dst = rng.integers(0, 16, size=2)
            route = router.route(int(src), int(dst), regular=False)
            for a, b in zip(route, route[1:]):
                ar, ac = divmod(a, 4)
                br, bc = divmod(b, 4)
                assert abs(ar - br) + abs(ac - bc) == 1


class TestRouteMatrix:
    def test_rejects_wrong_shape(self):
        router = TrafficMatrixRouter(_hw("mesh"))
        with pytest.raises(ValueError):
            router.route_matrix(np.zeros((4, 4)), regular=False)

    def test_conservation(self):
        router = TrafficMatrixRouter(_hw("mesh"))
        traffic = np.zeros((16, 16))
        traffic[0, 5] = 100.0
        traffic[3, 12] = 50.0
        report = router.route_matrix(traffic, regular=False)
        assert report.total_bytes == pytest.approx(150.0)
        # Each transfer's bytes appear on every link of its route.
        assert report.link_loads[(0, 1)] == pytest.approx(100.0)

    def test_diagonal_ignored(self):
        router = TrafficMatrixRouter(_hw("mesh"))
        traffic = np.eye(16) * 100.0
        report = router.route_matrix(traffic, regular=False)
        assert report.total_bytes == 0.0
        assert report.max_link_load == 0.0

    def test_relink_cuts_byte_hops(self):
        traffic = np.zeros((16, 16))
        traffic[0, 8] = 1000.0  # two rows down one column (ring distance 2)
        with_relink = TrafficMatrixRouter(_hw("ditile", relink=True))
        without = TrafficMatrixRouter(_hw("ditile", relink=False))
        assert (
            with_relink.route_matrix(traffic, regular=False).total_byte_hops
            < without.route_matrix(traffic, regular=False).total_byte_hops
        )

    def test_merged_reports(self):
        a = LinkLoadReport({(0, 1): 10.0}, 10.0, 10.0)
        b = LinkLoadReport({(0, 1): 5.0, (1, 2): 5.0}, 5.0, 10.0)
        merged = a.merged(b)
        assert merged.link_loads[(0, 1)] == 15.0
        assert merged.total_bytes == 15.0
        assert merged.avg_hops == pytest.approx(20.0 / 15.0)

    def test_bottleneck_cycles(self):
        report = LinkLoadReport({(0, 1): 1280.0}, 1280.0, 1280.0)
        assert report.bottleneck_cycles(128.0) == pytest.approx(10.0)


class TestPlanTrafficMatrix:
    def test_spatial_matrix_properties(self, medium_graph, medium_spec):
        model = DiTileAccelerator()
        plan = model.plan(medium_graph, medium_spec)
        matrix = spatial_traffic_matrix(plan, model.hardware)
        assert matrix.shape == (16, 16)
        assert np.all(matrix >= 0)
        assert np.all(np.diag(matrix) == 0)

    def test_spatial_matrix_routes_cleanly(self, medium_graph, medium_spec):
        model = DiTileAccelerator()
        plan = model.plan(medium_graph, medium_spec)
        matrix = spatial_traffic_matrix(plan, model.hardware)
        report = TrafficMatrixRouter(model.hardware).route_matrix(
            matrix, regular=False
        )
        assert report.total_bytes == pytest.approx(matrix.sum())
        if report.total_bytes > 0:
            assert report.avg_hops >= 1.0
            assert report.max_link_load <= report.total_bytes
