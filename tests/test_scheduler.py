"""Unit tests for repro.core.scheduler and repro.core.plan."""

import math

import pytest

from repro.core.plan import DGNNSpec
from repro.core.scheduler import DiTileScheduler, SchedulerOptions


class TestDGNNSpec:
    def test_classic_shape(self):
        spec = DGNNSpec.classic(172)
        assert spec.gcn_dims == (172, 64, 64)
        assert spec.num_gnn_layers == 2
        assert spec.embedding_dim == 64
        assert spec.rnn_matmuls == 8
        assert spec.feature_dim == 172

    def test_gru_matmuls(self):
        spec = DGNNSpec((8, 4), 4, rnn_kind="gru")
        assert spec.rnn_matmuls == 6

    def test_avg_width(self):
        spec = DGNNSpec((100, 50, 20), 10)
        assert spec.avg_gnn_width == pytest.approx(75.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            DGNNSpec((8,), 4)
        with pytest.raises(ValueError):
            DGNNSpec((8, 4), 0)
        with pytest.raises(ValueError):
            DGNNSpec((8, 4), 4, rnn_kind="rnn")
        with pytest.raises(ValueError):
            DGNNSpec((8, -4), 4)


class TestScheduler:
    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            DiTileScheduler(0, 1024)
        with pytest.raises(ValueError):
            DiTileScheduler(16, 0)

    def test_plan_is_complete(self, medium_graph, medium_spec):
        scheduler = DiTileScheduler(16, 4 * 2**20)
        plan = scheduler.plan(medium_graph, medium_spec)
        assert plan.tiling.alpha >= 1
        assert plan.factors.tiles_used <= 16
        assert plan.comm.total >= 0
        assert plan.workload.partition.num_vertices == 300
        assert plan.redundancy is not None
        assert plan.reuse_enabled
        assert "grid=" in plan.summary()

    def test_tight_buffer_forces_tiling(self, medium_graph, medium_spec):
        scheduler = DiTileScheduler(16, 24 * 1024)
        plan = scheduler.plan(medium_graph, medium_spec)
        assert plan.tiling.alpha > 1

    def test_disable_tiling(self, medium_graph, medium_spec):
        scheduler = DiTileScheduler(
            16, 24 * 1024, SchedulerOptions(enable_tiling=False)
        )
        plan = scheduler.plan(medium_graph, medium_spec)
        assert plan.tiling.alpha == 1
        assert math.isnan(plan.tiling.data_volume_bytes)

    def test_disable_parallelism_falls_back_to_temporal(
        self, medium_graph, medium_spec
    ):
        scheduler = DiTileScheduler(
            16, 4 * 2**20, SchedulerOptions(enable_parallelism=False)
        )
        plan = scheduler.plan(medium_graph, medium_spec)
        assert plan.factors.vertex_groups == 1
        assert plan.factors.snapshot_groups == min(16, medium_graph.num_snapshots)

    def test_disable_balance_uses_natural_partition(
        self, medium_graph, medium_spec
    ):
        import numpy as np

        scheduler = DiTileScheduler(
            16, 4 * 2**20, SchedulerOptions(enable_balance=False)
        )
        plan = scheduler.plan(medium_graph, medium_spec)
        members = plan.workload.partition.members(0)
        np.testing.assert_array_equal(members, np.arange(len(members)))
        assert not plan.balance_enabled

    def test_disable_reuse_sets_full_dissimilarity(
        self, medium_graph, medium_spec
    ):
        scheduler = DiTileScheduler(
            16, 4 * 2**20, SchedulerOptions(enable_reuse=False)
        )
        plan = scheduler.plan(medium_graph, medium_spec)
        assert plan.profile.dissimilarity == 1.0
        assert plan.redundancy is None
        assert not plan.reuse_enabled

    def test_plan_objective_not_worse_than_temporal(
        self, medium_graph, medium_spec
    ):
        default = DiTileScheduler(16, 4 * 2**20).plan(medium_graph, medium_spec)
        temporal = DiTileScheduler(
            16, 4 * 2**20, SchedulerOptions(enable_parallelism=False)
        ).plan(medium_graph, medium_spec)
        assert default.comm.total <= temporal.comm.total + 1e-9

    def test_communication_model_exposed(self, medium_graph, medium_spec):
        scheduler = DiTileScheduler(16, 4 * 2**20)
        model = scheduler.communication_model(medium_graph, medium_spec, alpha=2)
        assert model.profile.alpha == 2
        assert model.total_spatial_comm() > 0
