"""Unit and integration tests for the streaming-inference service layer."""

import numpy as np
import pytest

from repro.core.plan import DGNNSpec
from repro.ditile import DiTileAccelerator
from repro.graphs.continuous import ContinuousDynamicGraph, EdgeEvent
from repro.graphs.delta import apply_delta, snapshot_delta
from repro.graphs.dynamic import DynamicGraph
from repro.graphs.snapshot import GraphSnapshot
from repro.serving import (
    PlanDecision,
    PlanManager,
    ServiceConfig,
    StreamingService,
    WindowedIngestor,
    WindowProfile,
    WorkloadSignature,
    serve_offline,
    synthetic_event_stream,
)
from repro.serving.executor import WindowExecutor, simulate_window, transition_graph
from repro.serving.ingest import IncrementalWindowBuilder
from repro.serving.signature import DriftDetector


SPEC = DGNNSpec(gcn_dims=(8, 8), rnn_hidden_dim=8)


def _stream(events, n=16, initial=None, name="s"):
    return ContinuousDynamicGraph(
        initial if initial is not None else GraphSnapshot.empty(n), events, name=name
    )


# ---------------------------------------------------------------------------
# apply_delta (graphs/delta.py)
# ---------------------------------------------------------------------------
class TestApplyDelta:
    def test_inverse_of_snapshot_delta(self):
        rng = np.random.default_rng(0)
        prev = GraphSnapshot.from_edges(
            10, {(int(a), int(b)) for a, b in rng.integers(0, 10, (25, 2))}
        )
        cur = GraphSnapshot.from_edges(
            10, {(int(a), int(b)) for a, b in rng.integers(0, 10, (25, 2))}
        )
        rebuilt = apply_delta(prev, snapshot_delta(prev, cur))
        assert rebuilt == cur

    def test_empty_delta_preserves_snapshot(self):
        prev = GraphSnapshot.from_edges(5, [(0, 1), (2, 3)])
        rebuilt = apply_delta(prev, snapshot_delta(prev, prev))
        assert rebuilt == prev

    def test_grows_vertex_space_when_delta_references_new_ids(self):
        prev = GraphSnapshot.from_edges(3, [(0, 1)])
        cur = GraphSnapshot.from_edges(6, [(0, 1), (4, 5)])
        rebuilt = apply_delta(prev, snapshot_delta(prev, cur))
        assert rebuilt.num_vertices == 6
        assert rebuilt.edge_set() == {(0, 1), (4, 5)}


# ---------------------------------------------------------------------------
# Signatures and drift
# ---------------------------------------------------------------------------
class TestSignature:
    def test_profile_from_snapshot(self):
        snap = GraphSnapshot.from_edges(4, [(0, 1), (2, 1), (3, 1), (0, 2)])
        profile = WindowProfile.from_snapshot(snap)
        assert profile.num_edges == 4
        assert profile.degree_skew == pytest.approx(3 / 1.0)

    def test_empty_snapshot_skew_is_one(self):
        assert WindowProfile.from_snapshot(GraphSnapshot.empty(4)).degree_skew == 1.0

    def test_similar_profiles_share_signature(self):
        a = WindowProfile(num_vertices=1000, num_edges=5000, degree_skew=4.0)
        b = WindowProfile(num_vertices=1000, num_edges=5100, degree_skew=4.1)
        assert WorkloadSignature.from_profile(a, SPEC) == (
            WorkloadSignature.from_profile(b, SPEC)
        )

    def test_different_scales_do_not_collide(self):
        a = WindowProfile(num_vertices=1000, num_edges=5000, degree_skew=4.0)
        b = WindowProfile(num_vertices=1000, num_edges=20000, degree_skew=4.0)
        assert WorkloadSignature.from_profile(a, SPEC) != (
            WorkloadSignature.from_profile(b, SPEC)
        )

    def test_spec_is_part_of_the_key(self):
        p = WindowProfile(num_vertices=100, num_edges=400, degree_skew=2.0)
        other = DGNNSpec(gcn_dims=(16, 16), rnn_hidden_dim=16)
        assert WorkloadSignature.from_profile(p, SPEC) != (
            WorkloadSignature.from_profile(p, other)
        )


class TestDriftDetector:
    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError):
            DriftDetector(0.0)

    def test_fires_on_edge_growth(self):
        detector = DriftDetector(0.25)
        ref = WindowProfile(100, 1000, 2.0)
        assert not detector.fires(ref, WindowProfile(100, 1100, 2.0))
        assert detector.fires(ref, WindowProfile(100, 1500, 2.0))

    def test_fires_on_skew_change(self):
        detector = DriftDetector(0.25)
        ref = WindowProfile(100, 1000, 2.0)
        assert detector.fires(ref, WindowProfile(100, 1000, 4.0))

    def test_identical_profiles_have_zero_drift(self):
        ref = WindowProfile(100, 1000, 2.0)
        assert DriftDetector().drift(ref, ref) == 0.0


# ---------------------------------------------------------------------------
# Plan manager
# ---------------------------------------------------------------------------
def _transition(num_edges, n=32, seed=0):
    rng = np.random.default_rng(seed)
    edges = {(int(a), int(b)) for a, b in rng.integers(0, n, (num_edges, 2))}
    snap = GraphSnapshot.from_edges(n, edges)
    return DynamicGraph([snap, snap])


class TestPlanManager:
    def test_miss_then_hit(self):
        manager = PlanManager(DiTileAccelerator(), capacity=4)
        graph = _transition(60)
        plan1, d1 = manager.resolve(graph, SPEC)
        plan2, d2 = manager.resolve(graph, SPEC)
        assert d1 is PlanDecision.MISS and d2 is PlanDecision.HIT
        assert plan1 is plan2
        assert manager.hit_rate == pytest.approx(0.5)

    def test_drift_triggers_replan_within_same_bucket(self):
        manager = PlanManager(DiTileAccelerator(), capacity=4, drift_threshold=0.01)
        graph = _transition(60, seed=1)
        manager.resolve(graph, SPEC)
        # ~3% more edges: same log-bucket signature, but beyond threshold.
        near = _transition(62, seed=1)
        profile = WindowProfile.from_snapshot(near[-1])
        assert WorkloadSignature.from_profile(
            profile, SPEC
        ) == WorkloadSignature.from_profile(
            WindowProfile.from_snapshot(graph[-1]), SPEC
        )
        _, decision = manager.resolve(near, SPEC)
        assert decision is PlanDecision.REPLAN
        assert manager.replans == 1

    def test_lru_bound_evicts(self):
        manager = PlanManager(DiTileAccelerator(), capacity=2)
        for edges in (20, 200, 2000):
            manager.resolve(_transition(edges), SPEC)
        assert manager.size == 2
        assert manager.evictions == 1


# ---------------------------------------------------------------------------
# Ingest
# ---------------------------------------------------------------------------
class TestIncrementalWindowBuilder:
    def test_rejects_out_of_space_events(self):
        builder = IncrementalWindowBuilder(4)
        with pytest.raises(ValueError):
            builder.close_window([EdgeEvent(0.0, 0, 9)])

    def test_rejects_oversized_initial(self):
        with pytest.raises(ValueError):
            IncrementalWindowBuilder(2, initial=GraphSnapshot.empty(5))

    def test_delta_nets_churn(self):
        builder = IncrementalWindowBuilder(4, initial=GraphSnapshot.from_edges(4, [(0, 1)]))
        snapshot, delta = builder.close_window(
            [
                EdgeEvent(0.0, 0, 1),  # duplicate add of a live edge
                EdgeEvent(1.0, 1, 2),
                EdgeEvent(2.0, 1, 2, kind="remove"),
                EdgeEvent(3.0, 2, 3),
            ]
        )
        assert snapshot.edge_set() == {(0, 1), (2, 3)}
        assert delta.num_added == 1 and delta.num_removed == 0


class TestWindowedIngestor:
    def test_out_of_order_within_window_matches_sorted(self):
        # Feed the ingestor raw (unsorted) events; the offline reference
        # sorts globally. Disorder confined to windows must not matter.
        raw = [
            EdgeEvent(0.5, 0, 1),
            EdgeEvent(1.9, 2, 3),
            EdgeEvent(1.0, 1, 2),  # out of order, same window
            EdgeEvent(3.5, 3, 4),
            EdgeEvent(2.7, 4, 5),  # out of order, same (second) window
        ]
        ingestor = WindowedIngestor(16, window=2.0, origin=0.5)
        online = [w.snapshot for w in ingestor.windows(raw)]
        offline = _stream(raw).discretize_windows(2.0, origin=0.5)
        assert len(online) == offline.num_snapshots
        for a, b in zip(online, offline):
            assert a == b
        assert ingestor.late_events == 0

    def test_late_event_dropped_and_counted(self):
        raw = [EdgeEvent(0.0, 0, 1), EdgeEvent(5.0, 1, 2), EdgeEvent(0.5, 2, 3)]
        ingestor = WindowedIngestor(16, window=1.0)
        windows = list(ingestor.windows(raw))
        assert ingestor.late_events == 1
        assert windows[-1].snapshot.edge_set() == {(0, 1), (1, 2)}

    def test_late_event_raises_in_strict_mode(self):
        raw = [EdgeEvent(0.0, 0, 1), EdgeEvent(5.0, 1, 2), EdgeEvent(0.5, 2, 3)]
        ingestor = WindowedIngestor(16, window=1.0, strict_time_order=True)
        with pytest.raises(ValueError):
            list(ingestor.windows(raw))

    def test_gap_emits_empty_windows(self):
        raw = [EdgeEvent(0.0, 0, 1), EdgeEvent(9.5, 1, 2)]
        ingestor = WindowedIngestor(16, window=2.0)
        windows = list(ingestor.windows(raw))
        assert [w.index for w in windows] == [0, 1, 2, 3, 4]
        assert [w.num_events for w in windows] == [1, 0, 0, 0, 1]
        assert windows[2].snapshot.edge_set() == {(0, 1)}

    def test_empty_stream_yields_initial_window(self):
        initial = GraphSnapshot.from_edges(4, [(2, 3)])
        ingestor = WindowedIngestor(4, window=1.0, initial=initial)
        windows = list(ingestor.windows([]))
        assert len(windows) == 1
        assert windows[0].snapshot.edge_set() == {(2, 3)}


# ---------------------------------------------------------------------------
# Executor
# ---------------------------------------------------------------------------
class TestWindowExecutor:
    def test_inline_mode_runs_synchronously(self):
        with WindowExecutor(0) as pool:
            assert pool.submit(lambda: 42).result() == 42

    def test_inline_mode_captures_exceptions(self):
        def boom():
            raise RuntimeError("x")

        with WindowExecutor(0) as pool:
            future = pool.submit(boom)
            with pytest.raises(RuntimeError):
                future.result()

    def test_pool_mode(self):
        with WindowExecutor(2) as pool:
            futures = [pool.submit(lambda i=i: i * i) for i in range(8)]
            assert [f.result() for f in futures] == [i * i for i in range(8)]

    def test_rejects_negative_workers(self):
        with pytest.raises(ValueError):
            WindowExecutor(-1)


class TestSimulateWindow:
    def test_first_window_is_cold_start(self):
        model = DiTileAccelerator()
        snap = GraphSnapshot.from_edges(8, [(0, 1), (1, 2), (2, 3)])
        graph = transition_graph(None, snap)
        plan = model.scheduler.plan(graph, SPEC)
        result = simulate_window(model, SPEC, graph, plan)
        assert result.execution_cycles > 0
        assert len(result.per_snapshot_cycles) == 1

    def test_incremental_window_cheaper_than_cold(self):
        model = DiTileAccelerator()
        rng = np.random.default_rng(2)
        edges = {(int(a), int(b)) for a, b in rng.integers(0, 32, (120, 2))}
        snap = GraphSnapshot.from_edges(32, edges)
        near = GraphSnapshot.from_edges(32, set(list(edges)[:-3]) | {(0, 31)})
        cold_graph = transition_graph(None, near)
        warm_graph = transition_graph(snap, near)
        cold_plan = model.scheduler.plan(cold_graph, SPEC)
        warm_plan = model.scheduler.plan(warm_graph, SPEC)
        cold = simulate_window(model, SPEC, cold_graph, cold_plan)
        warm = simulate_window(model, SPEC, warm_graph, warm_plan)
        assert warm.total_macs < cold.total_macs


# ---------------------------------------------------------------------------
# End-to-end service
# ---------------------------------------------------------------------------
class TestStreamingService:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            ServiceConfig(window=0.0)
        with pytest.raises(ValueError):
            ServiceConfig(max_batch_windows=0)
        with pytest.raises(ValueError):
            ServiceConfig(queue_capacity=0)
        with pytest.raises(ValueError):
            ServiceConfig(workers=-1)

    def test_serve_reports_stats(self):
        stream = synthetic_event_stream(num_vertices=48, num_events=1200, seed=9)
        config = ServiceConfig(window=80.0, workers=2, max_batch_windows=3)
        report = StreamingService(DiTileAccelerator(), config).serve(stream, SPEC)
        stats = report.stats
        assert stats.windows == report.num_windows > 5
        assert stats.events == 1200
        assert stats.plan_lookups == stats.windows
        assert stats.plan_hit_rate > 0
        assert stats.elapsed_s > 0
        assert stats.events_per_sec > 0
        assert len(stats.latencies) == stats.windows
        assert stats.p95_latency_s >= stats.p50_latency_s >= 0
        summary = stats.summary()
        assert "hit rate" in summary and "events/s" in summary

    def test_parity_online_vs_offline(self):
        """The acceptance-criteria parity check: threaded, batched online
        serving must produce per-window results identical to the offline
        batch pipeline over the same discretized stream."""
        stream = synthetic_event_stream(num_vertices=64, num_events=2500, seed=4)
        config = ServiceConfig(
            window=125.0, workers=3, max_batch_windows=4, queue_capacity=3
        )
        report = StreamingService(DiTileAccelerator(), config).serve(stream, SPEC)
        offline = serve_offline(stream, SPEC, DiTileAccelerator(), config)
        assert report.num_windows == len(offline) > 10
        for online_result, offline_result in zip(report.results, offline):
            assert online_result == offline_result

    def test_parity_is_insensitive_to_service_shape(self):
        stream = synthetic_event_stream(num_vertices=40, num_events=900, seed=11)
        reference = None
        for workers, batch in [(0, 1), (1, 2), (4, 8)]:
            config = ServiceConfig(
                window=60.0, workers=workers, max_batch_windows=batch,
                queue_capacity=2,
            )
            report = StreamingService(DiTileAccelerator(), config).serve(
                stream, SPEC
            )
            results = report.results
            if reference is None:
                reference = results
            else:
                assert results == reference

    def test_drift_replans_are_counted(self):
        stream = synthetic_event_stream(num_vertices=64, num_events=2500, seed=4)
        config = ServiceConfig(window=125.0, workers=0, drift_threshold=1e-4)
        report = StreamingService(DiTileAccelerator(), config).serve(stream, SPEC)
        assert report.stats.plan_replans > 0

    def test_dataset_replay_roundtrip(self):
        from repro.serving import stream_from_dataset

        stream = stream_from_dataset("TW", scale=0.02, snapshots=4)
        spec = DGNNSpec.classic(stream.initial.feature_dim)
        config = ServiceConfig(window=1.0, origin=0.0, workers=2)
        report = StreamingService(DiTileAccelerator(), config).serve(stream, spec)
        assert report.num_windows == 3  # T-1 transitions


# ---------------------------------------------------------------------------
# Overlapped window pipeline
# ---------------------------------------------------------------------------
class TestWindowPipeline:
    def test_config_rejects_nonpositive_depth(self):
        with pytest.raises(ValueError):
            ServiceConfig(pipeline_depth=0)
        with pytest.raises(ValueError):
            ServiceConfig(pipeline_depth=-1)

    def test_pipeline_rejects_nonpositive_depth(self):
        from repro.serving import WindowPipeline

        with pytest.raises(ValueError, match="depth"):
            WindowPipeline(
                source=None, manager=None, runner=None, pool=None,
                spec=SPEC, stats=None, results=[], depth=0,
            )

    @pytest.mark.parametrize("depth", [1, 2, 4])
    def test_parity_across_depths(self, depth):
        """The tentpole invariant: per-window results are bit-identical
        to the serialized offline reference at every pipeline depth."""
        stream = synthetic_event_stream(num_vertices=48, num_events=1200, seed=6)
        config = ServiceConfig(
            window=70.0, workers=2, max_batch_windows=3,
            pipeline_depth=depth, queue_capacity=4,
        )
        report = StreamingService(DiTileAccelerator(), config).serve(stream, SPEC)
        offline = serve_offline(stream, SPEC, DiTileAccelerator(), config)
        assert report.num_windows == len(offline) > 8
        assert report.results == offline
        assert report.stats.pipeline_depth == depth
        assert 1 <= report.stats.max_inflight_batches <= depth

    def test_plan_cache_counters_are_depth_invariant(self):
        stream = synthetic_event_stream(num_vertices=40, num_events=900, seed=11)
        counters = []
        for depth in (1, 3):
            config = ServiceConfig(window=60.0, workers=2, pipeline_depth=depth)
            stats = StreamingService(DiTileAccelerator(), config).serve(
                stream, SPEC
            ).stats
            counters.append(
                (stats.plan_hits, stats.plan_misses, stats.plan_replans,
                 stats.plan_evictions, stats.profile_reuses)
            )
        assert counters[0] == counters[1]

    def test_empty_windows_reuse_the_profile(self):
        """A window with an empty delta has (by construction) the same
        snapshot as its predecessor, so its workload profile is reused
        instead of re-measured — without changing results."""
        stream = synthetic_event_stream(num_vertices=24, num_events=60, seed=2)
        first, last = stream.time_span
        config = ServiceConfig(
            window=(last - first) / 40, workers=2, pipeline_depth=2
        )
        report = StreamingService(DiTileAccelerator(), config).serve(stream, SPEC)
        offline = serve_offline(stream, SPEC, DiTileAccelerator(), config)
        assert report.results == offline
        empty_windows = sum(
            1 for r in report.stats.records if r.num_events == 0
        )
        assert report.stats.profile_reuses == empty_windows > 0

    def test_stall_accounting_and_summary(self):
        stream = synthetic_event_stream(num_vertices=48, num_events=1500, seed=9)
        config = ServiceConfig(window=60.0, workers=2, pipeline_depth=2)
        stats = StreamingService(DiTileAccelerator(), config).serve(
            stream, SPEC
        ).stats
        assert stats.prefetch_stall_s >= 0.0
        assert stats.collect_stall_s >= 0.0
        assert 0.0 <= stats.overlap_ratio <= 1.0
        as_dict = stats.as_dict()
        for key in ("pipeline_depth", "max_inflight_batches",
                    "prefetch_stall_s", "collect_stall_s", "overlap_ratio",
                    "profile_reuses"):
            assert key in as_dict
        assert "pipeline" in stats.summary()

    def test_overlap_ratio_edge_cases(self):
        from repro.serving.stats import ServiceStats

        stats = ServiceStats()
        assert stats.overlap_ratio == 0.0  # no execution at all
        stats.execute_s = 2.0
        stats.collect_stall_s = 0.5
        assert stats.overlap_ratio == 0.75
        stats.collect_stall_s = 5.0  # stall can exceed execute (clamped)
        assert stats.overlap_ratio == 0.0


# ---------------------------------------------------------------------------
# LRU-bounded library caches (satellite)
# ---------------------------------------------------------------------------
class TestBoundedLibraryCaches:
    def test_ditile_plan_cache_is_bounded(self):
        model = DiTileAccelerator(plan_cache_capacity=3)
        for seed in range(6):
            model.plan(_transition(40, seed=seed), SPEC)
        assert len(model._plan_cache) == 3
        assert model._plan_cache.stats.evictions == 3

    def test_ditile_plan_cache_still_memoizes(self):
        model = DiTileAccelerator()
        graph = _transition(40)
        assert model.plan(graph, SPEC) is model.plan(graph, SPEC)

    def test_changed_cache_is_bounded(self):
        snaps = [
            GraphSnapshot.from_edges(6, [(t % 5, (t + 1) % 5)]) for t in range(8)
        ]
        graph = DynamicGraph(snaps, changed_cache_capacity=2)
        for t in range(8):
            graph.changed_vertices(t)
        assert len(graph._changed_cache) == 2

    def test_changed_cache_results_stable_under_eviction(self):
        snaps = [
            GraphSnapshot.from_edges(6, [(t % 5, (t + 1) % 5)]) for t in range(6)
        ]
        bounded = DynamicGraph(snaps, changed_cache_capacity=1)
        unbounded = DynamicGraph(snaps)
        for t in range(6):
            np.testing.assert_array_equal(
                bounded.changed_vertices(t), unbounded.changed_vertices(t)
            )
        # Recompute after eviction must agree with the first computation.
        np.testing.assert_array_equal(
            bounded.changed_vertices(1), unbounded.changed_vertices(1)
        )
