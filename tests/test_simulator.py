"""Unit tests for repro.accel.simulator and repro.accel.metrics."""

import pytest

from repro.accel.config import HardwareConfig
from repro.accel.dram import DRAMTraffic
from repro.accel.energy import EnergyParams
from repro.accel.metrics import CostSummary, SnapshotCosts
from repro.accel.noc import NoCTraffic
from repro.accel.simulator import AcceleratorSimulator, SimulatorParams


def _costs(
    macs=1e7,
    dram=1e6,
    spatial=1e5,
    snapshots=4,
    utilization=1.0,
    sync=0.0,
    config=0.0,
):
    records = [
        SnapshotCosts(
            timestamp=t,
            gnn_aggregation_macs=macs * 0.3,
            gnn_combination_macs=macs * 0.5,
            rnn_macs=macs * 0.2,
            dram=DRAMTraffic(streaming_read=dram),
            noc=NoCTraffic(spatial_bytes=spatial),
            sync_events=sync,
            config_events=config,
        )
        for t in range(snapshots)
    ]
    return CostSummary("test", records, load_utilization=utilization)


@pytest.fixture
def simulator():
    return AcceleratorSimulator(HardwareConfig.small())


class TestCostSummary:
    def test_aggregates(self):
        costs = _costs(macs=100, dram=10, spatial=5, snapshots=3)
        assert costs.total_macs == pytest.approx(300)
        assert costs.gnn_macs == pytest.approx(240)
        assert costs.rnn_macs == pytest.approx(60)
        assert costs.dram_bytes == pytest.approx(30)
        assert costs.noc_bytes == pytest.approx(15)


class TestSimulator:
    def test_result_fields(self, simulator):
        result = simulator.run(_costs())
        assert result.execution_cycles > 0
        assert result.execution_seconds == pytest.approx(
            result.execution_cycles / 700e6
        )
        assert result.energy_joules > 0
        assert 0 <= result.pe_utilization <= 1
        assert len(result.per_snapshot_cycles) == 4

    def test_more_macs_more_cycles(self, simulator):
        small = simulator.run(_costs(macs=1e6, dram=0, spatial=0))
        large = simulator.run(_costs(macs=1e8, dram=0, spatial=0))
        assert large.execution_cycles > small.execution_cycles

    def test_imbalance_stretches_compute(self, simulator):
        balanced = simulator.run(_costs(utilization=1.0, dram=0, spatial=0))
        imbalanced = simulator.run(_costs(utilization=0.5, dram=0, spatial=0))
        assert imbalanced.execution_cycles == pytest.approx(
            2 * balanced.execution_cycles, rel=0.01
        )

    def test_offchip_overlaps_with_compute(self, simulator):
        compute_only = simulator.run(_costs(dram=1, spatial=0))
        small_dram = simulator.run(_costs(dram=1e4, spatial=0))
        # DRAM below the compute time hides entirely (max composition).
        assert small_dram.execution_cycles == pytest.approx(
            compute_only.execution_cycles, rel=0.05
        )

    def test_dram_bound_workload(self, simulator):
        result = simulator.run(_costs(macs=1e4, dram=1e9, spatial=0))
        assert result.cycles.off_chip == pytest.approx(
            result.cycles.total, rel=0.01
        )

    def test_overheads_accumulate(self, simulator):
        quiet = simulator.run(_costs(sync=0.0, config=0.0))
        noisy = simulator.run(_costs(sync=1.0, config=1.0))
        expected_extra = 4 * (
            SimulatorParams().sync_latency_cycles
            + SimulatorParams().config_latency_cycles
        )
        assert noisy.execution_cycles - quiet.execution_cycles == pytest.approx(
            expected_extra
        )

    def test_energy_params_override(self):
        hw = HardwareConfig.small()
        default = AcceleratorSimulator(hw).run(_costs())
        pricey = AcceleratorSimulator(
            hw, energy_params=EnergyParams(fp32_mult_pj=37.0)
        ).run(_costs())
        assert pricey.energy_joules > default.energy_joules

    def test_operand_noc_energy(self):
        hw = HardwareConfig.small()
        base = AcceleratorSimulator(hw).run(_costs())
        crossbar_fed = AcceleratorSimulator(
            hw, SimulatorParams(operand_noc_bytes_per_mac=2.0)
        ).run(_costs())
        assert crossbar_fed.energy.on_chip > base.energy.on_chip
        assert crossbar_fed.execution_cycles == pytest.approx(
            base.execution_cycles
        )

    def test_speedup_helpers(self, simulator):
        fast = simulator.run(_costs(macs=1e6, dram=0, spatial=0))
        slow = simulator.run(_costs(macs=4e6, dram=0, spatial=0))
        assert fast.speedup_over(slow) == pytest.approx(4.0, rel=0.05)
        assert slow.speedup_over(fast) == pytest.approx(0.25, rel=0.05)
        assert fast.energy_ratio_over(slow) > 1.0

    def test_cycle_breakdown_as_dict(self, simulator):
        result = simulator.run(_costs())
        assert set(result.cycles.as_dict()) == {
            "compute", "on_chip", "off_chip", "overhead", "total",
        }
