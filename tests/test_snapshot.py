"""Unit tests for repro.graphs.snapshot."""

import numpy as np
import pytest

from repro.graphs.snapshot import GraphSnapshot


class TestConstruction:
    def test_from_edges_builds_csr(self, tiny_snapshot):
        assert tiny_snapshot.num_vertices == 5
        assert tiny_snapshot.num_edges == 5
        np.testing.assert_array_equal(tiny_snapshot.in_neighbors(2), [0, 1, 3])
        np.testing.assert_array_equal(tiny_snapshot.in_neighbors(4), [2])
        np.testing.assert_array_equal(tiny_snapshot.in_neighbors(0), [])

    def test_from_edges_deduplicates(self):
        snapshot = GraphSnapshot.from_edges(3, [(0, 1), (0, 1), (0, 2)])
        assert snapshot.num_edges == 2

    def test_undirected_inserts_reverse_edges(self):
        snapshot = GraphSnapshot.from_edges(3, [(0, 1)], undirected=True)
        assert snapshot.has_edge(0, 1)
        assert snapshot.has_edge(1, 0)

    def test_empty(self):
        snapshot = GraphSnapshot.empty(4, feature_dim=7)
        assert snapshot.num_edges == 0
        assert snapshot.feature_dim == 7

    def test_rejects_bad_indptr(self):
        with pytest.raises(ValueError):
            GraphSnapshot(2, np.array([0, 1]), np.array([0]))

    def test_rejects_out_of_range_indices(self):
        with pytest.raises(ValueError):
            GraphSnapshot.from_edges(2, [(0, 5)])

    def test_rejects_negative_vertices(self):
        with pytest.raises(ValueError):
            GraphSnapshot.empty(-1)

    def test_rejects_bad_feature_shape(self):
        with pytest.raises(ValueError):
            GraphSnapshot.from_edges(
                3, [(0, 1)], feature_dim=2, features=np.zeros((3, 5))
            )

    def test_with_features_round_trip(self, tiny_snapshot):
        features = np.arange(15, dtype=float).reshape(5, 3)
        carrying = tiny_snapshot.with_features(features)
        np.testing.assert_array_equal(carrying.features, features)
        assert tiny_snapshot.features is None


class TestStructureQueries:
    def test_in_degree(self, tiny_snapshot):
        np.testing.assert_array_equal(tiny_snapshot.in_degree(), [0, 1, 3, 0, 1])
        assert tiny_snapshot.in_degree(2) == 3

    def test_out_degree(self, tiny_snapshot):
        np.testing.assert_array_equal(tiny_snapshot.out_degree(), [2, 1, 1, 1, 0])
        assert tiny_snapshot.out_degree(0) == 2

    def test_has_edge(self, tiny_snapshot):
        assert tiny_snapshot.has_edge(0, 1)
        assert not tiny_snapshot.has_edge(1, 0)

    def test_edge_set_round_trip(self, tiny_snapshot):
        edges = tiny_snapshot.edge_set()
        rebuilt = GraphSnapshot.from_edges(5, edges, feature_dim=3)
        assert rebuilt == tiny_snapshot

    def test_iter_edges_matches_edge_arrays(self, tiny_snapshot):
        src, dst = tiny_snapshot.edge_arrays()
        assert list(tiny_snapshot.iter_edges()) == list(
            zip(src.tolist(), dst.tolist())
        )

    def test_row_keys_change_on_row_change(self, tiny_snapshot):
        modified = GraphSnapshot.from_edges(
            5, [(0, 1), (0, 2), (1, 2), (3, 2), (3, 4)], feature_dim=3
        )
        original_keys = tiny_snapshot.row_keys()
        modified_keys = modified.row_keys()
        assert original_keys[4] != modified_keys[4]  # row 4 changed
        np.testing.assert_array_equal(original_keys[:4], modified_keys[:4])

    def test_equality_ignores_features(self, tiny_snapshot):
        features = np.ones((5, 3))
        assert tiny_snapshot.with_features(features) == tiny_snapshot


class TestFrontier:
    def test_expand_frontier(self, line_snapshot):
        np.testing.assert_array_equal(
            line_snapshot.expand_frontier(np.array([0])), [1]
        )
        np.testing.assert_array_equal(
            line_snapshot.expand_frontier(np.array([0, 2])), [1, 3]
        )

    def test_expand_frontier_empty(self, line_snapshot):
        assert len(line_snapshot.expand_frontier(np.array([], dtype=np.int64))) == 0

    def test_k_hop_affected_grows_monotonically(self, line_snapshot):
        seeds = np.array([0])
        previous = 0
        for hops in range(4):
            affected = line_snapshot.k_hop_affected(seeds, hops)
            assert len(affected) >= previous
            previous = len(affected)
        np.testing.assert_array_equal(
            line_snapshot.k_hop_affected(seeds, 3), [0, 1, 2, 3]
        )

    def test_k_hop_zero_is_seeds(self, tiny_snapshot):
        np.testing.assert_array_equal(
            tiny_snapshot.k_hop_affected(np.array([3, 1]), 0), [1, 3]
        )


class TestLinearAlgebra:
    def test_normalized_adjacency_rows(self, tiny_snapshot):
        matrix = tiny_snapshot.normalized_adjacency()
        assert matrix.shape == (5, 5)
        assert matrix[1, 0] > 0  # edge 0 -> 1
        assert matrix[0, 1] == 0  # no reverse edge

    def test_aggregate_matches_dense(self, tiny_snapshot, rng):
        x = rng.standard_normal((5, 3))
        dense = tiny_snapshot.normalized_adjacency() @ x
        sparse = tiny_snapshot.aggregate(x)
        np.testing.assert_allclose(sparse, dense, atol=1e-12)

    def test_aggregate_without_self_loops(self, tiny_snapshot, rng):
        x = rng.standard_normal((5, 3))
        dense = tiny_snapshot.normalized_adjacency(add_self_loops=False) @ x
        sparse = tiny_snapshot.aggregate(x, add_self_loops=False)
        np.testing.assert_allclose(sparse, dense, atol=1e-12)

    def test_aggregate_rejects_wrong_rows(self, tiny_snapshot):
        with pytest.raises(ValueError):
            tiny_snapshot.aggregate(np.zeros((3, 3)))
