"""The percentile/median convention of repro.serving.stats, pinned down.

Nearest-rank, uniformly: ``sorted(values)[max(ceil(q * n), 1) - 1]``,
``0.0`` for an empty sample, the sample itself for ``n == 1``, and ``q``
clamped into ``[0, 1]``.  These tests are the convention's contract —
see the satellite note in ``docs/observability.md``.
"""

import pytest

from repro.serving.stats import ServiceStats, WindowRecord, _percentile, median


class TestPercentileConvention:
    def test_empty_sample_is_zero(self):
        for q in (0.0, 0.5, 0.95, 1.0):
            assert _percentile([], q) == 0.0

    def test_single_sample_returned_for_every_q(self):
        for q in (0.0, 0.01, 0.5, 0.95, 1.0):
            assert _percentile([7.5], q) == 7.5

    def test_nearest_rank_odd_sample(self):
        values = [5.0, 1.0, 9.0]
        assert _percentile(values, 0.5) == 5.0
        assert _percentile(values, 0.95) == 9.0
        assert _percentile(values, 1.0) == 9.0

    def test_nearest_rank_even_sample_takes_lower_middle(self):
        assert _percentile([1.0, 2.0, 3.0, 4.0], 0.5) == 2.0

    def test_q_zero_is_minimum(self):
        assert _percentile([3.0, 1.0, 2.0], 0.0) == 1.0

    def test_q_clamped_outside_unit_interval(self):
        values = [1.0, 2.0, 3.0]
        assert _percentile(values, -0.5) == 1.0
        assert _percentile(values, 1.5) == 3.0

    def test_result_is_always_a_measured_sample(self):
        values = [0.3, 1.7, 2.2, 9.1, 4.4]
        for q in (0.0, 0.25, 0.5, 0.75, 0.9, 1.0):
            assert _percentile(values, q) in values

    def test_input_order_irrelevant(self):
        assert _percentile([9.0, 1.0, 5.0], 0.5) == _percentile(
            [1.0, 5.0, 9.0], 0.5
        )

    def test_median_helper_matches_p50(self):
        values = [4.0, 8.0, 6.0, 2.0]
        assert median(values) == _percentile(values, 0.5)
        assert median([]) == 0.0
        assert median([3.0]) == 3.0


class TestServiceStatsTelemetry:
    def _stats_with_latencies(self, latencies):
        stats = ServiceStats()
        for i, latency in enumerate(latencies):
            stats.records.append(
                WindowRecord(
                    index=i,
                    num_events=1,
                    latency_s=latency,
                    cycles=1.0,
                    plan_decision="hit",
                )
            )
        return stats

    def test_latency_percentiles_follow_convention(self):
        stats = self._stats_with_latencies([0.030, 0.010, 0.020])
        assert stats.p50_latency_s == 0.020
        assert stats.p95_latency_s == 0.030
        empty = self._stats_with_latencies([])
        assert empty.p50_latency_s == 0.0
        assert empty.p95_latency_s == 0.0
        assert empty.max_latency_s == 0.0

    def test_queue_depth_percentile(self):
        stats = ServiceStats()
        for depth in (0, 1, 5, 2, 0, 0, 0, 0, 0, 0):
            stats.record_queue_depth(depth)
        assert stats.max_queue_depth == 5
        assert stats.p95_queue_depth == 5.0
        assert ServiceStats().p95_queue_depth == 0.0

    def test_phase_time_fields_default_and_export(self):
        stats = ServiceStats()
        assert stats.plan_resolve_s == 0.0
        assert stats.execute_s == 0.0
        stats.plan_resolve_s = 0.25
        stats.execute_s = 1.5
        exported = stats.as_dict()
        assert exported["plan_resolve_s"] == 0.25
        assert exported["execute_s"] == 1.5
        assert "p95_queue_depth" in exported

    def test_summary_reports_phase_time_split(self):
        stats = ServiceStats()
        stats.plan_resolve_s = 0.5
        stats.execute_s = 0.125
        summary = stats.summary()
        assert "phase time" in summary
        assert "plan=500.00 ms" in summary
        assert "execute=125.00 ms" in summary
