"""Tests for the sweep and supplementary experiment modules."""

import pytest

from repro.core.plan import DGNNSpec
from repro.experiments.runner import ExperimentConfig
from repro.experiments.supplementary import (
    frontend_overhead,
    link_load_analysis,
    pipeline_utilization,
)
from repro.experiments.sweeps import (
    bandwidth_scaling_sweep,
    buffer_scaling_sweep,
    snapshot_count_sweep,
    tile_scaling_sweep,
)
from repro.graphs.generators import generate_dynamic_graph

FAST = ExperimentConfig(scale=0.02, snapshots=4, large_dataset_shrink=0.1)


@pytest.fixture(scope="module")
def workload():
    graph = generate_dynamic_graph(
        250, 2000, 5, dissimilarity=0.1, feature_dim=48, seed=9, name="sweep"
    )
    return graph, DGNNSpec.classic(48, hidden_dim=16)


class TestSweeps:
    def test_tile_scaling_monotone_compute(self, workload):
        graph, spec = workload
        result = tile_scaling_sweep(graph, spec, sides=(2, 4))
        assert len(result.rows) == 2
        # More tiles never slow things down on this workload.
        assert result.rows[1][2] <= result.rows[0][2] * 1.05

    def test_buffer_scaling_reduces_alpha(self, workload):
        graph, spec = workload
        result = buffer_scaling_sweep(
            graph, spec, capacities_kib=(64, 1024, 8192)
        )
        alphas = [row[1] for row in result.rows]
        assert alphas == sorted(alphas, reverse=True)
        drams = [row[2] for row in result.rows]
        assert drams[-1] <= drams[0]

    def test_bandwidth_scaling_reduces_offchip_share(self, workload):
        graph, spec = workload
        result = bandwidth_scaling_sweep(graph, spec, bandwidths=(8.0, 256.0))
        shares = [row[2] for row in result.rows]
        assert shares[-1] <= shares[0]

    def test_snapshot_count_sweep(self, workload):
        _, spec = workload
        graphs = [
            generate_dynamic_graph(
                250, 2000, t, dissimilarity=0.1, feature_dim=48, seed=9
            )
            for t in (2, 6)
        ]
        result = snapshot_count_sweep(graphs, spec)
        assert [row[0] for row in result.rows] == [2, 6]
        assert result.rows[1][2] > result.rows[0][2]  # more T, more cycles


class TestSupplementary:
    def test_pipeline_utilization_rows(self):
        result = pipeline_utilization(FAST)
        assert len(result.rows) == 3
        for row in result.rows:
            assert 0 < row[2] <= 1.0

    def test_link_load_relink_vs_mesh(self):
        result = link_load_analysis(FAST)
        rows = result.row_dict()
        assert rows["Re-Link"][2] <= rows["static mesh"][2] + 1e-9

    def test_frontend_overhead_small(self):
        result = frontend_overhead(
            ExperimentConfig(scale=0.01, snapshots=3, large_dataset_shrink=0.1)
        )
        for row in result.rows:
            assert row[3] < 50.0


class TestCapacitySharingKnob:
    def test_sharing_increases_temporal_dram(self, workload):
        from dataclasses import replace

        from repro.baselines.algorithms import (
            AlgorithmParams,
            Placement,
            build_costs,
        )

        graph, spec = workload
        placement = Placement(snapshot_groups=5, vertex_groups=1)
        off = build_costs(
            graph, spec, "re", placement,
            params=replace(AlgorithmParams(), onchip_bytes=128 * 1024),
        )
        on = build_costs(
            graph, spec, "re", placement,
            params=replace(AlgorithmParams(), group_capacity_sharing=1.0,
                           onchip_bytes=128 * 1024),
        )
        assert on.dram_bytes > off.dram_bytes


class TestSeedVariance:
    def test_variance_report(self):
        from repro.experiments.variance import seed_variance

        result = seed_variance(
            ExperimentConfig(scale=0.015, snapshots=3), seeds=(1, 2)
        )
        assert len(result.rows) == 4
        for row in result.rows:
            name, mean, std, low, high, cv = row
            assert low <= mean <= high
            assert std >= 0
            assert mean > 1.0  # every baseline slower than DiTile

    def test_unknown_metric_rejected(self):
        from repro.experiments.variance import seed_variance

        with pytest.raises(ValueError):
            seed_variance(metric="latency")


class TestDepthSweep:
    def test_depth_sweep_macs_grow(self, workload):
        from repro.experiments.sweeps import gnn_depth_sweep

        graph, _ = workload
        result = gnn_depth_sweep(graph, feature_dim=48, hidden_dim=16,
                                 depths=(1, 3))
        macs = [row[1] for row in result.rows]
        assert macs[1] > macs[0]


class TestPareto:
    def test_frontier_logic(self):
        from repro.experiments.pareto import pareto_frontier

        points = [("a", 1.0, 5.0), ("b", 2.0, 2.0), ("c", 3.0, 3.0),
                  ("d", 1.0, 5.0)]
        optimal = pareto_frontier(points)
        assert "a" in optimal and "b" in optimal
        assert "c" not in optimal  # dominated by b

    def test_ditile_on_frontier(self):
        from repro.experiments.pareto import design_points

        result = design_points(FAST, include_ablations=False)
        flags = {row[0]: row[3] for row in result.rows}
        assert flags["DiTile-DGNN"] == "yes"
