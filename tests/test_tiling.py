"""Unit tests for repro.core.tiling (Algorithm 1, Eqs. 5-6)."""

import pytest

from repro.core.tiling import (
    dram_access,
    subgraph_data_volume,
    subgraph_tiling,
)
from repro.graphs.generators import generate_dynamic_graph


@pytest.fixture
def stats(medium_graph):
    return medium_graph.stats()


class TestDRAMAccess:
    def test_alpha_one_is_vertex_count(self, stats):
        # Eq. 6 at alpha=1: SV = V so the boundary term vanishes.
        assert dram_access(stats, 1) == pytest.approx(sum(stats.num_vertices))

    def test_monotone_in_alpha(self, stats):
        values = [dram_access(stats, a) for a in (1, 2, 4, 8)]
        assert values == sorted(values)

    def test_matches_closed_form(self, stats):
        # Eq. 6 simplifies to sum_i V_i + E_i * (1 - 1/alpha).
        alpha = 4
        expected = sum(
            v + e * (1 - 1 / alpha)
            for v, e in zip(stats.num_vertices, stats.num_edges)
        )
        assert dram_access(stats, alpha) == pytest.approx(expected)

    def test_rejects_bad_alpha(self, stats):
        with pytest.raises(ValueError):
            dram_access(stats, 0)


class TestDataVolume:
    def test_shrinks_with_alpha(self, stats):
        v1 = subgraph_data_volume(stats, 1, feature_dim=32)
        v4 = subgraph_data_volume(stats, 4, feature_dim=32)
        assert v4 == pytest.approx(v1 / 4)

    def test_counts_features_and_edges(self, stats):
        volume = subgraph_data_volume(stats, 1, feature_dim=10, output_dim=6)
        expected = stats.avg_vertices * 16 * 4 + stats.avg_edges * 8
        # avg == per-snapshot here (constant vertex count), so worst == avg.
        assert volume == pytest.approx(expected, rel=0.2)


class TestSubgraphTiling:
    def test_large_buffer_needs_no_tiling(self, medium_graph):
        result = subgraph_tiling(medium_graph, buffer_bytes=1e9, feature_dim=32)
        assert result.alpha == 1
        assert result.fits_buffer

    def test_small_buffer_forces_tiling(self, medium_graph):
        untiled_volume = subgraph_data_volume(
            medium_graph.stats(), 1, feature_dim=32
        )
        result = subgraph_tiling(
            medium_graph, buffer_bytes=untiled_volume / 3, feature_dim=32
        )
        assert result.alpha >= 3
        assert result.fits_buffer
        assert result.data_volume_bytes <= result.buffer_bytes

    def test_picks_minimal_dram_access(self, medium_graph):
        stats = medium_graph.stats()
        volume = subgraph_data_volume(stats, 1, feature_dim=32)
        result = subgraph_tiling(
            medium_graph, buffer_bytes=volume / 2.5, feature_dim=32
        )
        # Eq. 6 is monotone, so the optimum is the smallest feasible alpha.
        assert result.alpha == 3
        assert result.dram_access == pytest.approx(dram_access(stats, 3))

    def test_impossible_buffer_returns_finest(self, medium_graph):
        result = subgraph_tiling(
            medium_graph, buffer_bytes=16.0, feature_dim=32, max_alpha=50
        )
        assert result.alpha == 50
        assert not result.fits_buffer

    def test_rejects_nonpositive_buffer(self, medium_graph):
        with pytest.raises(ValueError):
            subgraph_tiling(medium_graph, buffer_bytes=0)

    def test_accepts_stats_directly(self, medium_graph):
        from_graph = subgraph_tiling(medium_graph, 1e9, feature_dim=32)
        from_stats = subgraph_tiling(medium_graph.stats(), 1e9, feature_dim=32)
        assert from_graph.alpha == from_stats.alpha

    def test_varying_snapshot_sizes(self):
        graph = generate_dynamic_graph(150, 1400, 4, dissimilarity=0.3, seed=1)
        result = subgraph_tiling(graph, buffer_bytes=64 * 1024, feature_dim=64)
        assert result.alpha >= 1
        assert result.subgraph_vertices == pytest.approx(
            graph.stats().avg_vertices / result.alpha
        )
