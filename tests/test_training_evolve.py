"""Tests for the training-cost extension, EvolveGCN, and graph validation."""

import numpy as np
import pytest

from repro.core.training import TrainingParams, training_costs
from repro.ditile import DiTileAccelerator
from repro.graphs.dynamic import DynamicGraph
from repro.graphs.snapshot import GraphSnapshot
from repro.graphs.validate import (
    GraphValidationError,
    validate_dynamic_graph,
    validate_snapshot,
)
from repro.models.evolvegcn import EvolveGCNModel


class TestTrainingCosts:
    @pytest.fixture
    def inference(self, medium_graph, medium_spec):
        return DiTileAccelerator().build_costs(medium_graph, medium_spec)

    def test_training_costs_exceed_inference(
        self, inference, medium_graph, medium_spec
    ):
        train = training_costs(
            inference,
            medium_spec,
            vertices_per_snapshot=[s.num_vertices for s in medium_graph],
        )
        assert train.total_macs > 2.5 * inference.total_macs
        assert train.dram_bytes > inference.dram_bytes
        assert train.noc_bytes > inference.noc_bytes
        assert train.algorithm.endswith("-train")

    def test_backward_factor_scales_compute(self, inference, medium_spec):
        light = training_costs(
            inference, medium_spec,
            params=TrainingParams(backward_compute_factor=1.0),
        )
        heavy = training_costs(
            inference, medium_spec,
            params=TrainingParams(backward_compute_factor=3.0),
        )
        assert heavy.total_macs > light.total_macs

    def test_allreduce_adds_sync(self, inference, medium_spec):
        train = training_costs(
            inference, medium_spec,
            params=TrainingParams(allreduce_rounds=2),
        )
        extra = sum(t.sync_events for t in train.snapshots) - sum(
            s.sync_events for s in inference.snapshots
        )
        assert extra == pytest.approx(2 * len(inference.snapshots))

    def test_activation_stash_spills(self, inference, medium_graph, medium_spec):
        small_buffer = training_costs(
            inference,
            medium_spec,
            vertices_per_snapshot=[s.num_vertices for s in medium_graph],
            params=TrainingParams(onchip_bytes=1024),
        )
        big_buffer = training_costs(
            inference,
            medium_spec,
            vertices_per_snapshot=[s.num_vertices for s in medium_graph],
            params=TrainingParams(onchip_bytes=1e12),
        )
        assert small_buffer.dram_bytes > big_buffer.dram_bytes

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            TrainingParams(backward_compute_factor=-1.0)
        with pytest.raises(ValueError):
            TrainingParams(allreduce_rounds=-1)

    def test_training_simulates(self, inference, medium_graph, medium_spec):
        from repro.accel.simulator import AcceleratorSimulator

        model = DiTileAccelerator()
        train = training_costs(
            inference, medium_spec,
            vertices_per_snapshot=[s.num_vertices for s in medium_graph],
        )
        fwd = AcceleratorSimulator(model.hardware).run(inference)
        bwd = AcceleratorSimulator(model.hardware).run(train)
        assert bwd.execution_cycles > fwd.execution_cycles


class TestEvolveGCN:
    def test_create_and_run(self, small_graph):
        model = EvolveGCNModel.create([6, 8, 4], seed=0)
        outputs = model.run(small_graph)
        assert outputs.num_snapshots == 5
        assert outputs.embeddings[0].shape == (40, 4)
        assert len(outputs.weights[0]) == 2

    def test_weights_actually_evolve(self, small_graph):
        model = EvolveGCNModel.create([6, 8], seed=1)
        outputs = model.run(small_graph)
        assert not np.allclose(outputs.weights[0][0], outputs.weights[1][0])

    def test_static_graph_still_changes_embeddings(self, small_graph):
        # Unlike the feature-recurrent DGNN, weight evolution changes
        # embeddings even when the graph is frozen.
        model = EvolveGCNModel.create([6, 8], seed=2)
        frozen = DynamicGraph([small_graph[0], small_graph[0]])
        outputs = model.run(frozen)
        assert not np.allclose(outputs.embeddings[0], outputs.embeddings[1])

    def test_dimension_validation(self):
        from repro.models.gcn import GCNModel
        from repro.models.rnn import GRUCell

        gnn = GCNModel.create([6, 8], seed=3)
        with pytest.raises(ValueError):
            EvolveGCNModel(gnn, [])
        with pytest.raises(ValueError):
            EvolveGCNModel(gnn, [GRUCell.create(4, 4, seed=0)])

    def test_requires_features(self):
        graph = DynamicGraph([GraphSnapshot.from_edges(4, [(0, 1)], feature_dim=3)])
        model = EvolveGCNModel.create([3, 4], seed=4)
        with pytest.raises(ValueError):
            model.run(graph)


class TestValidation:
    def test_valid_graph_passes(self, small_graph):
        validate_dynamic_graph(small_graph)
        validate_snapshot(small_graph[0])

    def test_corrupt_indptr_detected(self, tiny_snapshot):
        broken = GraphSnapshot.__new__(GraphSnapshot)
        broken.num_vertices = tiny_snapshot.num_vertices
        broken.indptr = tiny_snapshot.indptr.copy()
        broken.indices = tiny_snapshot.indices.copy()
        broken.feature_dim = tiny_snapshot.feature_dim
        broken.timestamp = 0
        broken._features = None
        broken._out_degree = None
        broken.indptr[2] = 99  # corrupt past nnz
        with pytest.raises(GraphValidationError) as excinfo:
            validate_snapshot(broken)
        assert any("monoton" in p or "indptr" in p for p in excinfo.value.problems)

    def test_unsorted_row_detected(self, tiny_snapshot):
        broken = GraphSnapshot.__new__(GraphSnapshot)
        broken.num_vertices = tiny_snapshot.num_vertices
        broken.indptr = tiny_snapshot.indptr.copy()
        broken.indices = tiny_snapshot.indices.copy()
        broken.feature_dim = tiny_snapshot.feature_dim
        broken.timestamp = 0
        broken._features = None
        broken._out_degree = None
        # Vertex 2's row is [0, 1, 3]; reverse it.
        start, stop = broken.indptr[2], broken.indptr[3]
        broken.indices[start:stop] = broken.indices[start:stop][::-1]
        with pytest.raises(GraphValidationError):
            validate_snapshot(broken)

    def test_nan_features_detected(self, tiny_snapshot):
        features = np.zeros((5, 3))
        features[1, 1] = np.nan
        bad = tiny_snapshot.with_features(features)
        with pytest.raises(GraphValidationError):
            validate_snapshot(bad)

    def test_all_problems_reported(self, tiny_snapshot):
        broken = GraphSnapshot.__new__(GraphSnapshot)
        broken.num_vertices = 5
        broken.indptr = tiny_snapshot.indptr.copy()
        broken.indices = tiny_snapshot.indices.copy()
        broken.feature_dim = 3
        broken.timestamp = 0
        broken._features = None
        broken._out_degree = None
        broken.indptr[0] = -1
        broken.indices[0] = 99
        with pytest.raises(GraphValidationError) as excinfo:
            validate_snapshot(broken)
        assert len(excinfo.value.problems) >= 2
