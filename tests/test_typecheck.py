"""Static type check of the lint suite and the unit-suffix-heavy modules.

Runs the same command as the CI ``lint`` job.  Skipped when mypy is not
installed (it is not a runtime dependency; the container image may omit
it), so the tier-1 suite stays self-contained.
"""

import subprocess
import sys
from pathlib import Path

import pytest

pytest.importorskip("mypy", reason="mypy not installed; checked in CI")

REPO = Path(__file__).parent.parent
TARGETS = [
    "src/repro/analysis",
    "src/repro/accel/energy.py",
    "src/repro/accel/metrics.py",
]


def test_mypy_passes_on_checked_surface():
    proc = subprocess.run(
        [sys.executable, "-m", "mypy", *TARGETS],
        cwd=REPO,
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, f"mypy failed:\n{proc.stdout}\n{proc.stderr}"
