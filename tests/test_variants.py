"""Tests for GraphSAGE and GIN layer variants, including incremental equality."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.generators import generate_dynamic_graph
from repro.models.aggregate import mean_rows, normalized_rows, sum_rows
from repro.models.dgnn import DGNNModel
from repro.models.incremental import IncrementalDGNN
from repro.models.rnn import LSTMCell
from repro.models.variants import (
    GINLayer,
    SAGELayer,
    create_gin_model,
    create_sage_model,
)


class TestAggregates:
    def test_normalized_subset_matches_full(self, tiny_snapshot, rng):
        x = rng.standard_normal((5, 3))
        full = tiny_snapshot.aggregate(x)
        subset = normalized_rows(tiny_snapshot, x, np.array([1, 3]))
        np.testing.assert_allclose(subset, full[[1, 3]], atol=1e-12)

    def test_mean_rows_by_hand(self, line_snapshot):
        x = np.array([[1.0], [3.0], [5.0], [7.0]])
        out = mean_rows(line_snapshot, x, np.arange(4))
        # Vertex 0 has no in-neighbours -> 0; others average the one
        # predecessor.
        np.testing.assert_allclose(out, [[0.0], [1.0], [3.0], [5.0]])

    def test_sum_rows_by_hand(self, tiny_snapshot):
        x = np.ones((5, 2))
        out = sum_rows(tiny_snapshot, x, np.arange(5))
        np.testing.assert_allclose(out[:, 0], tiny_snapshot.in_degree())

    def test_empty_rows(self, tiny_snapshot, rng):
        x = rng.standard_normal((5, 3))
        empty = np.empty(0, dtype=np.int64)
        assert mean_rows(tiny_snapshot, x, empty).shape == (0, 3)
        assert sum_rows(tiny_snapshot, x, empty).shape == (0, 3)


class TestSAGELayer:
    def test_dims(self):
        layer = SAGELayer(np.zeros((4, 6)), np.zeros((4, 6)))
        assert layer.in_dim == 4
        assert layer.out_dim == 6

    def test_rejects_mismatched_weights(self):
        with pytest.raises(ValueError):
            SAGELayer(np.zeros((4, 6)), np.zeros((4, 5)))

    def test_forward_matches_manual(self, tiny_snapshot, rng):
        layer = SAGELayer(
            rng.standard_normal((3, 2)), rng.standard_normal((3, 2))
        )
        x = rng.standard_normal((5, 3))
        out = layer.forward(tiny_snapshot, x)
        manual = np.maximum(
            x @ layer.w_self
            + mean_rows(tiny_snapshot, x, np.arange(5)) @ layer.w_neigh,
            0.0,
        )
        np.testing.assert_allclose(out, manual, atol=1e-12)

    def test_forward_rows_matches_forward(self, tiny_snapshot, rng):
        layer = SAGELayer(
            rng.standard_normal((3, 2)), rng.standard_normal((3, 2))
        )
        x = rng.standard_normal((5, 3))
        full = layer.forward(tiny_snapshot, x)
        rows = np.array([0, 2, 4])
        np.testing.assert_allclose(
            layer.forward_rows(tiny_snapshot, x, rows), full[rows], atol=1e-12
        )


class TestGINLayer:
    def test_dims(self):
        layer = GINLayer(np.zeros((4, 8)), np.zeros((8, 6)))
        assert layer.in_dim == 4
        assert layer.out_dim == 6

    def test_rejects_unchained_mlp(self):
        with pytest.raises(ValueError):
            GINLayer(np.zeros((4, 8)), np.zeros((7, 6)))

    def test_epsilon_weighs_self(self, tiny_snapshot, rng):
        x = rng.standard_normal((5, 3))
        w1, w2 = rng.standard_normal((3, 3)), rng.standard_normal((3, 3))
        small = GINLayer(w1, w2, epsilon=0.0).forward(tiny_snapshot, x)
        large = GINLayer(w1, w2, epsilon=5.0).forward(tiny_snapshot, x)
        assert not np.allclose(small, large)

    def test_forward_rows_matches_forward(self, tiny_snapshot, rng):
        layer = GINLayer(
            rng.standard_normal((3, 4)), rng.standard_normal((4, 2)), 0.3
        )
        x = rng.standard_normal((5, 3))
        full = layer.forward(tiny_snapshot, x)
        rows = np.array([1, 3])
        np.testing.assert_allclose(
            layer.forward_rows(tiny_snapshot, x, rows), full[rows], atol=1e-12
        )


class TestVariantModels:
    def test_create_sage_stack(self, tiny_snapshot, rng):
        model = create_sage_model([3, 8, 4], seed=0)
        assert model.num_layers == 2
        out = model.forward(tiny_snapshot, rng.standard_normal((5, 3)))
        assert out.shape == (5, 4)

    def test_create_gin_stack(self, tiny_snapshot, rng):
        model = create_gin_model([3, 8, 4], seed=0)
        out = model.forward(tiny_snapshot, rng.standard_normal((5, 3)))
        assert out.shape == (5, 4)

    def test_rejects_short_dims(self):
        with pytest.raises(ValueError):
            create_sage_model([3])
        with pytest.raises(ValueError):
            create_gin_model([3])

    @pytest.mark.parametrize("builder", [create_sage_model, create_gin_model])
    def test_incremental_equals_full(self, builder, small_graph):
        gnn = builder([6, 8, 5], seed=1)
        model = DGNNModel(gnn, LSTMCell.create(5, 4, seed=2))
        full = model.run(small_graph)
        incremental = IncrementalDGNN(model).run(small_graph)
        for t in range(small_graph.num_snapshots):
            np.testing.assert_allclose(
                incremental.embeddings[t], full.embeddings[t], atol=1e-10
            )
            np.testing.assert_allclose(
                incremental.hidden[t], full.hidden[t], atol=1e-10
            )

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 10_000), dissimilarity=st.floats(0.0, 0.5))
    def test_property_sage_incremental_equals_full(self, seed, dissimilarity):
        graph = generate_dynamic_graph(
            20, 70, 3, dissimilarity=dissimilarity, feature_dim=4,
            seed=seed, with_features=True,
        )
        gnn = create_sage_model([4, 5], seed=seed)
        model = DGNNModel(gnn, LSTMCell.create(5, 3, seed=seed))
        full = model.run(graph)
        incremental = IncrementalDGNN(model).run(graph)
        for t in range(3):
            np.testing.assert_allclose(
                incremental.hidden[t], full.hidden[t], atol=1e-10
            )
