"""Unit tests for repro.models.workload (op counting + Eq. 17)."""

import numpy as np
import pytest

from repro.graphs.dynamic import DynamicGraph
from repro.graphs.snapshot import GraphSnapshot
from repro.models.workload import (
    KernelOps,
    dynamic_vertex_workload,
    gcn_ops,
    gcn_ops_subset,
    label_aggregation,
    rnn_ops,
    vertex_workload,
)


class TestKernelOps:
    def test_total_and_add(self):
        a = KernelOps(10, 20)
        b = KernelOps(1, 2)
        combined = a + b
        assert combined.total == 33
        assert combined.aggregation == 11


class TestGCNOps:
    def test_counts_by_hand(self, tiny_snapshot):
        # V=5, E=5, dims 3 -> 4: aggregation (E+V)*3 = 30,
        # combination V*3*4 = 60.
        ops = gcn_ops(tiny_snapshot, [3, 4])
        assert ops.aggregation == 30
        assert ops.combination == 60

    def test_multi_layer_accumulates(self, tiny_snapshot):
        one = gcn_ops(tiny_snapshot, [3, 4])
        two = gcn_ops(tiny_snapshot, [3, 4, 2])
        assert two.aggregation == one.aggregation + (5 + 5) * 4
        assert two.combination == one.combination + 5 * 4 * 2

    def test_rejects_short_dims(self, tiny_snapshot):
        with pytest.raises(ValueError):
            gcn_ops(tiny_snapshot, [3])

    def test_subset_counts(self, tiny_snapshot):
        full = gcn_ops(tiny_snapshot, [3, 4])
        all_rows = [np.arange(5)]
        subset_full = gcn_ops_subset(tiny_snapshot, [3, 4], all_rows)
        assert subset_full.total == full.total
        some = gcn_ops_subset(tiny_snapshot, [3, 4], [np.array([2])])
        # Vertex 2 has in-degree 3 (+1 self loop): aggregation 4*3 = 12,
        # combination 1*3*4 = 12.
        assert some.aggregation == 12
        assert some.combination == 12

    def test_subset_requires_per_layer_rows(self, tiny_snapshot):
        with pytest.raises(ValueError):
            gcn_ops_subset(tiny_snapshot, [3, 4, 2], [np.array([0])])


class TestRNNOps:
    def test_lstm_counts_by_hand(self):
        # V=2, z=3, h=4: 4 input projections 2*4*3*4=96,
        # 4 hidden projections 2*4*4*4=128, elementwise 2*4*4=32.
        ops = rnn_ops(2, 3, 4, num_matmuls=8)
        assert ops.combination == 96 + 128 + 32
        assert ops.aggregation == 0

    def test_gru_is_cheaper(self):
        lstm = rnn_ops(10, 8, 8, num_matmuls=8)
        gru = rnn_ops(10, 8, 8, num_matmuls=6)
        assert gru.total < lstm.total


class TestLabelAggregation:
    def test_line_graph_walk_counts(self, line_snapshot):
        # 0 -> 1 -> 2 -> 3: walks^1 = in-degree, walks^2 via two hops.
        rounds = label_aggregation(line_snapshot, 2)
        np.testing.assert_array_equal(rounds[0], [0, 1, 1, 1])
        np.testing.assert_array_equal(rounds[1], [0, 0, 1, 1])

    def test_rejects_zero_layers(self, line_snapshot):
        with pytest.raises(ValueError):
            label_aggregation(line_snapshot, 0)

    def test_counts_walks_not_vertices(self):
        # Two parallel paths 0->1->3 and 0->2->3 give walks^2(3) = 2.
        snapshot = GraphSnapshot.from_edges(
            4, [(0, 1), (0, 2), (1, 3), (2, 3)]
        )
        rounds = label_aggregation(snapshot, 2)
        assert rounds[1][3] == 2


class TestVertexWorkload:
    def test_paper_fig4_example(self):
        """§5 worked example: N^1(A)=3, N^2(A)=1 gives workload 7 at L=2."""
        # A=0 with in-neighbours B=1, C=2, D=3; B has in-neighbour E=4.
        snapshot = GraphSnapshot.from_edges(
            5, [(1, 0), (2, 0), (3, 0), (4, 1)]
        )
        workload = vertex_workload(snapshot, 2)
        # L_A = 2 * walks^1(A) + walks^2(A) = 2*3 + 1 = 7 (Eq. 17).
        assert workload[0] == 7

    def test_line_graph_by_hand(self, line_snapshot):
        workload = vertex_workload(line_snapshot, 2)
        # L_v = 2*walks^1 + walks^2.
        np.testing.assert_array_equal(workload, [0, 2, 3, 3])

    def test_single_layer_is_in_degree(self, tiny_snapshot):
        np.testing.assert_array_equal(
            vertex_workload(tiny_snapshot, 1), tiny_snapshot.in_degree()
        )

    def test_dynamic_sums_over_snapshots(self, line_snapshot):
        graph = DynamicGraph([line_snapshot, line_snapshot])
        vload = dynamic_vertex_workload(graph, 2)
        np.testing.assert_array_equal(vload, [0, 4, 6, 6])

    def test_dynamic_handles_growing_graph(self):
        small = GraphSnapshot.from_edges(3, [(0, 1)])
        large = GraphSnapshot.from_edges(5, [(0, 1), (3, 4)])
        graph = DynamicGraph([small, large])
        vload = dynamic_vertex_workload(graph, 1)
        assert len(vload) == 5
        assert vload[1] == 2  # in both snapshots
        assert vload[4] == 1  # only in the second
