"""Calibration harness: compare measured figure metrics against paper targets.

Run:  python tools/calibrate.py [scale]

Prints, for each dataset and on average, the ratios the paper's figures
report (baseline / DiTile) next to the published targets, so calibration
constants in `repro.baselines.algorithms.AlgorithmParams` and the accel
models can be tuned.
"""

import sys

import numpy as np

from repro.baselines import (
    DGNNBoosterAccelerator,
    MEGAAccelerator,
    RACEAccelerator,
    ReaDyAccelerator,
)
from repro.core import DGNNSpec
from repro.ditile import DiTileAccelerator
from repro.graphs import dataset_names, load_dataset

SCALE = float(sys.argv[1]) if len(sys.argv) > 1 else 0.05

# Paper targets (baseline / DiTile ratios).
TARGETS = {
    "ops": {"ReaDy": 2.92, "DGNN-Booster": 2.92, "RACE": 1.51, "MEGA": 1.36},
    "dram": {"ReaDy": 2.39, "DGNN-Booster": 2.39, "RACE": 1.36, "MEGA": 1.50},
    "time": {"ReaDy": 1.94, "DGNN-Booster": 2.28, "RACE": 1.30, "MEGA": 1.56},
    "energy": {"ReaDy": 6.26, "DGNN-Booster": 6.01, "RACE": 4.10, "MEGA": 3.50},
}


def main():
    ratios = {m: {n: [] for n in TARGETS["ops"]} for m in TARGETS}
    util = {"DiTile-DGNN": [], "baseline": []}
    for name in dataset_names():
        scale = SCALE if name not in ("Mobile", "Flicker") else SCALE / 5
        g = load_dataset(name, scale=scale, seed=7)
        spec = DGNNSpec.classic(g.feature_dim)
        models = [
            ReaDyAccelerator(),
            DGNNBoosterAccelerator(),
            RACEAccelerator(),
            MEGAAccelerator(),
            DiTileAccelerator(),
        ]
        results = {m.name: m.simulate(g, spec) for m in models}
        d = results["DiTile-DGNN"]
        util["DiTile-DGNN"].append(d.pe_utilization)
        print(f"\n== {name} (scale={scale}) V~{g.stats().avg_vertices:.0f} "
              f"E~{g.stats().avg_edges:.0f} Dis~{g.stats().avg_dissimilarity:.3f}")
        for bname, r in results.items():
            if bname == "DiTile-DGNN":
                continue
            ops = r.total_macs / d.total_macs
            dram = r.dram_bytes / d.dram_bytes
            time = r.execution_cycles / d.execution_cycles
            energy = r.energy_joules / d.energy_joules
            util["baseline"].append(r.pe_utilization)
            ratios["ops"][bname].append(ops)
            ratios["dram"][bname].append(dram)
            ratios["time"][bname].append(time)
            ratios["energy"][bname].append(energy)
            print(f"  {bname:13s} ops x{ops:5.2f} dram x{dram:5.2f} "
                  f"time x{time:5.2f} energy x{energy:5.2f} util={r.pe_utilization:.3f}")
        print(f"  {'DiTile':13s} util={d.pe_utilization:.3f} "
              f"ctl={d.energy.control_fraction()*100:.1f}% "
              f"cycles: C={d.cycles.compute:.2e} N={d.cycles.on_chip:.2e} D={d.cycles.off_chip:.2e}")

    print("\n===== averages vs paper targets =====")
    for metric, per_base in ratios.items():
        for bname, vals in per_base.items():
            avg = float(np.mean(vals))
            tgt = TARGETS[metric][bname]
            print(f"  {metric:6s} {bname:13s} measured x{avg:5.2f}  target x{tgt:5.2f}")
    print(f"  PE util: DiTile {np.mean(util['DiTile-DGNN']):.3f} vs baselines "
          f"{np.mean(util['baseline']):.3f} (paper: DiTile +23.8% on WD)")


if __name__ == "__main__":
    main()
